"""Command-line interface: regenerate any experiment from a shell.

Usage::

    python -m repro list
    python -m repro policies
    python -m repro compare --topo cairn --policy mp --policy ecmp-k
    python -m repro run fig09 [--out results.txt]
    python -m repro run fig09 --trace t.jsonl --metrics-out m.json --timing
    python -m repro run all
    python -m repro overhead
    python -m repro converge --trace t.jsonl --metrics-out m.json
    python -m repro converge --causal --trace t.jsonl
    python -m repro explain mit anl --topo cairn
    python -m repro packet-converge --trace t.jsonl --json results.json
    python -m repro report t.jsonl --metrics m.json --json report.json
    python -m repro loss-sweep --rates 0 0.05 0.1 0.2
    python -m repro fuzz -n 100 --seed 0 --out-dir fuzz-artifacts
    python -m repro replay fuzz-artifacts/fuzz-case-17.json
    python -m repro fleet fuzz --cases 1000 --workers 4 --out fleet-out
    python -m repro fleet sweep --workers 4 --md sweep.md
    python -m repro fleet zoo --workers 4 --topo all

Equivalent to the ``benchmarks/`` suite but without pytest — handy for
one-off runs and for piping tables elsewhere.

The observability flags hang an :mod:`repro.obs` session around the run:
``--trace`` streams structured JSONL events, ``--metrics-out`` writes
the metrics/timings snapshot as JSON, and ``--timing`` prints the phase
wall-clock table.  Any of them also upgrades oracle-mode runs to the
live MPDA control plane so protocol metrics exist (see
:func:`repro.obs.start`).

``converge`` runs the audited single-link-failure experiment (the
online LFI auditor checks every delivery) and ``report`` post-processes
any trace + metrics pair into a structured run report — both are how
the EXPERIMENTS.md convergence tables are produced.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable

from repro import obs
from repro.bench import figures
from repro.bench.convergence import (
    converge_experiment,
    packet_converge_experiment,
    render_failover_table,
    render_packet_failover_table,
)
from repro.bench.figures import FigureResult
from repro.bench.loss import DEFAULT_RATES, loss_sweep, render_loss_table
from repro.bench.overhead import overhead_experiment, render_overhead_table
from repro.bench.reporting import render_flow_table, render_series
from repro.obs.convergence import read_trace
from repro.obs.export import render_timings, write_metrics
from repro.obs.report import build_report, render_report, write_report
from repro.policy import available_policies

#: Experiment registry: id -> (factory, description).
EXPERIMENTS: dict[str, tuple[Callable[[], FigureResult], str]] = {
    "fig09": (figures.fig09_cairn_opt_vs_mp, "CAIRN: OPT vs MP (Fig. 9)"),
    "fig10": (figures.fig10_net1_opt_vs_mp, "NET1: OPT vs MP (Fig. 10)"),
    "fig11": (figures.fig11_cairn_mp_vs_sp, "CAIRN: MP vs SP (Fig. 11)"),
    "fig12": (figures.fig12_net1_mp_vs_sp, "NET1: MP vs SP (Fig. 12)"),
    "fig13": (figures.fig13_cairn_tl_sweep, "CAIRN: effect of Tl (Fig. 13)"),
    "fig14": (figures.fig14_net1_tl_sweep, "NET1: effect of Tl (Fig. 14)"),
    "dyn-net1": (
        lambda: figures.dyn_bursty("net1"),
        "NET1: MP vs SP under bursty traffic",
    ),
    "dyn-cairn": (
        lambda: figures.dyn_bursty("cairn"),
        "CAIRN: MP vs SP under bursty traffic",
    ),
    "abl-allocation": (
        figures.abl_allocation,
        "ablation: allocation cadence and damping",
    ),
    "abl-successors": (
        figures.abl_successors,
        "ablation: successor-set size",
    ),
}


def render(result: FigureResult) -> str:
    """Full textual form of one experiment's outcome."""
    parts: list[str] = []
    if result.flow_series:
        parts.append(render_flow_table(result.figure, result.flow_series))
    if result.sweep_series:
        parts.append(
            render_series(result.figure, result.sweep_series, x_name="Tl (s)")
        )
    parts.append(f"claim: {result.claim}")
    metrics = ", ".join(
        f"{key}={value:.4g}" for key, value in result.metrics.items()
    )
    parts.append(f"metrics: {metrics}")
    return "\n".join(parts)


def _add_fleet_common(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every ``repro fleet`` verb."""
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="W",
        help="worker processes / shards (default 4)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="fleet-out",
        help=(
            "output directory: plan.json, shard journals, replay "
            "artifacts, report.json (default fleet-out)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="per-cell wall-clock budget in seconds (default 120)",
    )
    parser.add_argument(
        "--inline",
        action="store_true",
        help="run every shard in this process (debugging; same report)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Simple Approximation to Minimum-Delay "
            "Routing' (SIGCOMM 1999) — experiment runner"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    sub.add_parser(
        "policies",
        help="list the registered routing policies (--policy names)",
    )

    compare = sub.add_parser(
        "compare",
        help=(
            "run registered routing policies side by side on the "
            "evaluation topologies; emits the per-policy delay table"
        ),
    )
    compare.add_argument(
        "--topo",
        choices=["cairn", "net1", "all"],
        default="all",
        help="which evaluation topology to run (default all)",
    )
    compare.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "policy to include (repeatable; default: every registered "
            "policy — see 'repro policies')"
        ),
    )
    compare.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="simulated seconds per run (default: the figures' 200)",
    )
    compare.add_argument(
        "--warmup",
        type=float,
        default=None,
        metavar="S",
        help="warmup cut-off (default: the figures' 60)",
    )
    compare.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        default=None,
        help="write per-policy results as JSON to this file",
    )
    compare.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the markdown delay table to this file",
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id",
    )
    run.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the rendered tables to this file",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSONL event trace to this file",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics/timings snapshot as JSON to this file",
    )
    run.add_argument(
        "--timing",
        action="store_true",
        help="print per-phase wall-clock timings after the run",
    )

    overhead = sub.add_parser(
        "overhead",
        help="control-message overhead: MPDA vs. LSA flooding",
    )
    overhead.add_argument(
        "--epochs",
        type=int,
        default=5,
        metavar="N",
        help="number of cost-change update epochs (default 5)",
    )
    overhead.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="seed for cost jitter and delivery interleaving",
    )
    overhead.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the rendered table to this file",
    )

    converge = sub.add_parser(
        "converge",
        help=(
            "audited single-link-failure convergence experiment "
            "(online LFI/loop check on every delivery)"
        ),
    )
    converge.add_argument(
        "--topo",
        choices=["cairn", "net1", "all"],
        default="all",
        help="which evaluation topology to run (default all)",
    )
    converge.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="delivery-interleaving seed (default 0)",
    )
    converge.add_argument(
        "--audit-sample",
        type=int,
        default=1,
        metavar="N",
        help="audit every N-th router event (default 1 = every event)",
    )
    converge.add_argument(
        "--causal",
        action="store_true",
        help=(
            "enable causal tracing and audit its invariants: one update "
            "wave per injected event, nonempty critical paths, zero "
            "orphan messages (nonzero exit on violation)"
        ),
    )
    converge.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the structured JSONL event trace to this file",
    )
    converge.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics/timings snapshot as JSON to this file",
    )
    converge.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the rendered table to this file",
    )

    packet = sub.add_parser(
        "packet-converge",
        help=(
            "audited packet-granularity link failure/restore: the "
            "busiest safe link goes down mid-run, traffic reroutes"
        ),
    )
    packet.add_argument(
        "--topo",
        choices=["cairn", "net1", "all"],
        default="all",
        help="which evaluation topology to run (default all)",
    )
    packet.add_argument(
        "--load",
        type=float,
        default=0.9,
        metavar="X",
        help="traffic load factor (default 0.9)",
    )
    packet.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="packet arrival/service and interleaving seed (default 0)",
    )
    packet.add_argument(
        "--audit-sample",
        type=int,
        default=1,
        metavar="N",
        help="audit every N-th router event (default 1 = every event)",
    )
    packet.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the structured JSONL event trace to this file",
    )
    packet.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics/timings snapshot as JSON to this file",
    )
    packet.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        default=None,
        help="write the per-phase results as JSON to this file",
    )
    packet.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the rendered table to this file",
    )

    loss = sub.add_parser(
        "loss-sweep",
        help=(
            "overhead + convergence vs. wire loss rate (reliable "
            "transport over a lossy channel, audited)"
        ),
    )
    loss.add_argument(
        "--topo",
        choices=["cairn", "net1", "all"],
        default="all",
        help="which evaluation topology to run (default all)",
    )
    loss.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=list(DEFAULT_RATES),
        metavar="P",
        help="loss rates to sweep (default 0 0.05 0.1 0.2)",
    )
    loss.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="delivery-interleaving seed (default 0)",
    )
    loss.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        default=None,
        help="write the per-rate results as JSON to this file",
    )
    loss.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the rendered table to this file",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help=(
            "schedule fuzzing: random topologies + fault schedules, "
            "Theorem 3 audited on every delivery"
        ),
    )
    fuzz.add_argument(
        "-n",
        "--iterations",
        type=int,
        default=50,
        metavar="N",
        help="number of fuzz cases to run (default 50)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="seed of the first case; case i uses seed S+i (default 0)",
    )
    fuzz.add_argument(
        "--raw",
        action="store_true",
        help=(
            "drop the reliable-transport shim and run MPDA over the raw "
            "faulty channel (failures are then expected: the paper "
            "assumes reliable delivery)"
        ),
    )
    fuzz.add_argument(
        "--out-dir",
        metavar="DIR",
        default="fuzz-artifacts",
        help="directory for failure replay artifacts "
        "(default fuzz-artifacts)",
    )

    fleet = sub.add_parser(
        "fleet",
        help=(
            "parallel experiment fleet: sharded campaigns across worker "
            "processes, merged into one deterministic report"
        ),
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    ffuzz = fleet_sub.add_parser(
        "fuzz",
        help=(
            "sharded fuzz campaign across the policy zoo; failures are "
            "minimized into replay artifacts"
        ),
    )
    ffuzz.add_argument(
        "--cases",
        type=int,
        default=200,
        metavar="N",
        help="total cells: seeds interleaved across policies (default 200)",
    )
    ffuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="seed of the first case (default 0)",
    )
    ffuzz.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="NAME",
        help=(
            "policies to fuzz (default: mp + every dynamic zoo policy; "
            "'mp' runs the real protocol, others the policy lifecycle)"
        ),
    )
    ffuzz.add_argument(
        "--raw",
        action="store_true",
        help=(
            "drop the reliable-transport shim on protocol cases "
            "(failures then expected: the paper assumes reliable "
            "delivery)"
        ),
    )
    ffuzz.add_argument(
        "--no-minimize",
        action="store_true",
        help="keep failing cases as generated (skip schedule shrinking)",
    )
    _add_fleet_common(ffuzz)

    fsweep = fleet_sub.add_parser(
        "sweep",
        help=(
            "eta x Tl x loss heat-map grid on one evaluation network "
            "(protocol mode; loss runs over reliable transport)"
        ),
    )
    fsweep.add_argument(
        "--etas",
        type=float,
        nargs="+",
        default=None,
        metavar="E",
        help="AH damping steps (default 0.3 0.6 1.0)",
    )
    fsweep.add_argument(
        "--tls",
        type=float,
        nargs="+",
        default=None,
        metavar="TL",
        help="long-term intervals, Ts = Tl/5 (default 10 20 40)",
    )
    fsweep.add_argument(
        "--losses",
        type=float,
        nargs="+",
        default=None,
        metavar="P",
        help="control-plane loss rates (default 0 0.1 0.2)",
    )
    fsweep.add_argument(
        "--network",
        choices=["cairn", "net1"],
        default="cairn",
        help="evaluation network (default cairn)",
    )
    fsweep.add_argument(
        "--duration",
        type=float,
        default=120.0,
        metavar="S",
        help="simulated seconds per cell (default 120)",
    )
    fsweep.add_argument(
        "--warmup",
        type=float,
        default=40.0,
        metavar="S",
        help="warmup cut-off per cell (default 40)",
    )
    fsweep.add_argument(
        "--md",
        metavar="PATH",
        default=None,
        help="write the markdown heat-map tables to this file",
    )
    _add_fleet_common(fsweep)

    fzoo = fleet_sub.add_parser(
        "zoo",
        help="policy x network comparison matrix, one cell per pair",
    )
    fzoo.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="NAME",
        help="policy to include (repeatable; default: whole registry)",
    )
    fzoo.add_argument(
        "--topo",
        choices=["cairn", "net1", "all"],
        default="all",
        help="evaluation topologies (default all)",
    )
    fzoo.add_argument(
        "--duration",
        type=float,
        default=200.0,
        metavar="S",
        help="simulated seconds per cell (default 200)",
    )
    fzoo.add_argument(
        "--warmup",
        type=float,
        default=60.0,
        metavar="S",
        help="warmup cut-off per cell (default 60)",
    )
    fzoo.add_argument(
        "--md",
        metavar="PATH",
        default=None,
        help="write the markdown policy table to this file",
    )
    _add_fleet_common(fzoo)

    replay = sub.add_parser(
        "replay",
        help="deterministically re-execute a fuzz failure artifact",
    )
    replay.add_argument(
        "artifact",
        metavar="ARTIFACT",
        help="JSON artifact written by 'repro fuzz'",
    )

    explain = sub.add_parser(
        "explain",
        help=(
            "route provenance: walk NODE's routing-table entry for DEST "
            "back through the causal LSU chain to its root trigger"
        ),
    )
    explain.add_argument(
        "node", metavar="NODE", help="router whose route to explain"
    )
    explain.add_argument(
        "dest", metavar="DEST", help="destination of the route"
    )
    explain.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "read a causal trace written by 'converge --causal --trace' "
            "instead of running the failover experiment"
        ),
    )
    explain.add_argument(
        "--topo",
        choices=["cairn", "net1"],
        default="cairn",
        help="topology for the fresh failover run (default cairn)",
    )
    explain.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="delivery-interleaving seed (default 0)",
    )

    report = sub.add_parser(
        "report",
        help="post-process a JSONL trace (+ metrics snapshot) into a run "
        "report",
    )
    report.add_argument(
        "trace",
        metavar="TRACE",
        help="JSONL trace file written by --trace",
    )
    report.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="metrics snapshot written by --metrics-out",
    )
    report.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        default=None,
        help="also write the report as indented JSON to this file",
    )
    report.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the rendered text report to this file",
    )

    scale = sub.add_parser(
        "scale-bench",
        help=(
            "profiled scale trajectory: cold start + failure + restore "
            "on CAIRN and generated Waxman ISP graphs"
        ),
    )
    scale.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_scale.json",
        help="artifact path (default BENCH_scale.json)",
    )
    scale.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        metavar="N",
        help="run only trajectory points with at most N nodes",
    )
    scale.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="workload + interleaving seed (default 0)",
    )
    scale.add_argument(
        "--memory",
        choices=["rss", "tracemalloc", "none"],
        default="rss",
        help=(
            "memory instrument (default rss; tracemalloc is exact but "
            "slows runs 2-4x, so its timings are not comparable)"
        ),
    )
    scale.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="also write the per-size phase-profile reports to this file",
    )

    check = sub.add_parser(
        "bench-check",
        help=(
            "rerun the scale workload and diff against the committed "
            "BENCH_scale.json; nonzero exit on regression (the CI gate)"
        ),
    )
    check.add_argument(
        "--baseline",
        metavar="PATH",
        default="BENCH_scale.json",
        help="committed baseline to compare against",
    )
    check.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        metavar="N",
        help="check only trajectory points with at most N nodes",
    )
    check.add_argument(
        "--wall-factor",
        type=float,
        default=None,
        metavar="X",
        help="fail when wall_s exceeds X times the baseline (default 3)",
    )
    check.add_argument(
        "--mem-factor",
        type=float,
        default=None,
        metavar="X",
        help="fail when peak RSS exceeds X times the baseline (default 3)",
    )
    check.add_argument(
        "--fresh-out",
        metavar="PATH",
        default=None,
        help="write the fresh (just-measured) document to this file",
    )

    profile = sub.add_parser(
        "profile",
        help=(
            "profile one scale workload: phases ranked by self time, "
            "plus run-level wall/CPU/memory"
        ),
    )
    profile.add_argument(
        "--n",
        type=int,
        default=27,
        metavar="N",
        help="trajectory size to profile (default 27 = CAIRN)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="K",
        help="show only the K hottest phases",
    )
    profile.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="workload + interleaving seed (default 0)",
    )
    profile.add_argument(
        "--memory",
        choices=["rss", "tracemalloc", "none"],
        default="rss",
        help="memory instrument (default rss)",
    )
    profile.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the profile report to this file",
    )
    return parser


def _run_experiments(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    observing = args.trace or args.metrics_out or args.timing
    if args.metrics_out:
        # Fail before the (possibly long) run, not after it: truncate
        # the output file now, exactly as --trace does with its sink.
        open(args.metrics_out, "w").close()
    observation = (
        obs.start(trace_path=args.trace) if observing else None
    )
    try:
        chunks: list[str] = []
        for name in names:
            factory, _ = EXPERIMENTS[name]
            text = render(factory())
            chunks.append(text)
            print(text)
            print()
        if observation is not None:
            if args.metrics_out:
                write_metrics(args.metrics_out, observation)
            if args.timing:
                print(render_timings(observation))
        if args.out:
            with open(args.out, "w") as fh:
                fh.write("\n\n".join(chunks) + "\n")
    finally:
        if observation is not None:
            obs.stop()
    return 0


def _run_converge(args: argparse.Namespace) -> int:
    topologies = (
        ("cairn", "net1") if args.topo == "all" else (args.topo,)
    )
    causal = getattr(args, "causal", False)
    observation = obs.start(
        trace_path=args.trace,
        audit=True,
        audit_sample=args.audit_sample,
        causal=causal,
    )
    try:
        results = converge_experiment(
            seed=args.seed, topologies=topologies
        )
        if args.metrics_out:
            write_metrics(args.metrics_out, observation)
        tracker = observation.causal
    finally:
        obs.stop()
    text = render_failover_table(results)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if causal:
        return _causal_audit(tracker)
    return 0


def _causal_audit(tracker) -> int:
    """Gate the causal invariants (the CI causal-audit step)."""
    problems: list[str] = []
    if tracker.roots == 0:
        problems.append("no causal root events (no disturbances seen)")
    if len(tracker.waves) != tracker.roots:
        problems.append(
            f"{tracker.roots} injected events but "
            f"{len(tracker.waves)} update waves"
        )
    for path in tracker.critical:
        if path["length"] < 1:
            problems.append(
                f"empty critical path for window op={path['op']!r} "
                f"link={path['link']!r}"
            )
    if tracker.orphans:
        problems.append(f"{tracker.orphans} orphan (untagged) messages")
    summary = (
        f"causal audit: {tracker.roots} roots, {len(tracker.waves)} "
        f"waves, {len(tracker.critical)} critical paths, "
        f"{tracker.orphans} orphans"
    )
    if problems:
        print(f"{summary} -- FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"{summary} -- OK")
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from repro.obs.causal import provenance_chain, render_explanation

    if args.trace:
        events = read_trace(args.trace)
    else:
        # No trace given: record a fresh causal failover run (cold
        # start, fail one safe link, restore) on the chosen topology.
        fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-explain-")
        os.close(fd)
        try:
            obs.start(trace_path=path, causal=True)
            try:
                converge_experiment(seed=args.seed, topologies=(args.topo,))
            finally:
                obs.stop()
            events = read_trace(path)
        finally:
            os.unlink(path)
    chain = provenance_chain(events, args.node, args.dest)
    if chain is None:
        print(
            f"no causally-stamped route change for {args.node} -> "
            f"{args.dest}: is this a causal trace "
            "('converge --causal --trace ...'), and did the route ever "
            "change?"
        )
        return 1
    print(render_explanation(chain, args.node, args.dest))
    return 0


def _run_packet_converge(args: argparse.Namespace) -> int:
    topologies = (
        ("cairn", "net1") if args.topo == "all" else (args.topo,)
    )
    observation = obs.start(
        trace_path=args.trace, audit=True, audit_sample=args.audit_sample
    )
    try:
        results = packet_converge_experiment(
            seed=args.seed, load=args.load, topologies=topologies
        )
        if args.metrics_out:
            write_metrics(args.metrics_out, observation)
    finally:
        obs.stop()
    text = render_packet_failover_table(results)
    print(text)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(
                [result.as_dict() for result in results], fh, indent=2
            )
            fh.write("\n")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    events = read_trace(args.trace)
    metrics_doc = None
    if args.metrics:
        with open(args.metrics) as fh:
            metrics_doc = json.load(fh)
    report = build_report(
        events,
        metrics_doc,
        source={"trace": args.trace, "metrics": args.metrics or ""},
    )
    if args.json_out:
        write_report(args.json_out, report)
    text = render_report(report)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


def _run_loss_sweep(args: argparse.Namespace) -> int:
    topologies = (
        ("cairn", "net1") if args.topo == "all" else (args.topo,)
    )
    obs.start(audit=True)
    try:
        results = loss_sweep(
            rates=tuple(args.rates), seed=args.seed, topologies=topologies
        )
    finally:
        obs.stop()
    text = render_loss_table(results)
    print(text)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(
                [result.as_dict() for result in results], fh, indent=2
            )
            fh.write("\n")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.testing import fuzz as run_fuzz

    report = run_fuzz(
        args.iterations,
        seed=args.seed,
        reliable=not args.raw,
        out_dir=args.out_dir,
    )
    print(report.render())
    return 0 if report.clean else 1


def _run_fleet(args: argparse.Namespace) -> int:
    import os

    from repro import fleet

    if args.fleet_command == "fuzz":
        policies = (
            tuple(args.policies) if args.policies else fleet.FUZZ_POLICIES
        )
        plan = fleet.fuzz_plan(
            args.cases,
            seed=args.seed,
            policies=policies,
            reliable=not args.raw,
            shards=args.workers,
            minimize=not args.no_minimize,
        )
    elif args.fleet_command == "sweep":
        from repro.fleet.plan import SWEEP_ETAS, SWEEP_LOSSES, SWEEP_TLS

        plan = fleet.sweep_plan(
            etas=tuple(args.etas) if args.etas else SWEEP_ETAS,
            tls=tuple(args.tls) if args.tls else SWEEP_TLS,
            losses=tuple(args.losses) if args.losses else SWEEP_LOSSES,
            network=args.network,
            duration=args.duration,
            warmup=args.warmup,
            shards=args.workers,
        )
    elif args.fleet_command == "zoo":
        networks = (
            ("cairn", "net1") if args.topo == "all" else (args.topo,)
        )
        plan = fleet.zoo_plan(
            policies=tuple(args.policy) if args.policy else (),
            networks=networks,
            duration=args.duration,
            warmup=args.warmup,
            shards=args.workers,
        )
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown fleet verb {args.fleet_command!r}")

    report = fleet.run_fleet(
        plan, out_dir=args.out, timeout=args.timeout, inline=args.inline
    )
    if args.fleet_command == "fuzz":
        print(fleet.render_fuzz_summary(report))
    elif args.fleet_command == "sweep":
        table = fleet.render_sweep_tables(report)
        print(table)
        if args.md:
            with open(args.md, "w") as fh:
                fh.write(table + "\n")
    else:
        table = fleet.render_zoo_table(report)
        print(table)
        if args.md:
            with open(args.md, "w") as fh:
                fh.write(table + "\n")
    print(f"report: {os.path.join(args.out, 'report.json')}")
    clean = set(report["statuses"]) <= {"pass"}
    return 0 if clean else 1


def _run_replay(args: argparse.Namespace) -> int:
    from repro.testing import replay as run_replay

    result = run_replay(args.artifact)
    print(result.render())
    return 0 if result.reproduced else 1


def _scale_sizes(max_nodes: int | None) -> tuple[int, ...]:
    from repro.bench.scale import SCALE_SIZES

    if max_nodes is None:
        return SCALE_SIZES
    sizes = tuple(n for n in SCALE_SIZES if n <= max_nodes)
    if not sizes:
        raise SystemExit(
            f"--max-nodes {max_nodes} excludes every trajectory size "
            f"{SCALE_SIZES}"
        )
    return sizes


def _run_scale_bench(args: argparse.Namespace) -> int:
    from repro.bench.scale import (
        collect_scale,
        render_scale_table,
        write_scale,
    )

    document = collect_scale(
        sizes=_scale_sizes(args.max_nodes),
        seed=args.seed,
        profile_memory=args.memory,
    )
    write_scale(args.out, document)
    print(render_scale_table(document))
    print(f"wrote {args.out}")
    if args.profile_out:
        with open(args.profile_out, "w") as fh:
            for entry in document["entries"]:
                fh.write(f"## {entry['name']} (n={entry['n']})\n")
                fh.write(entry["profile_report"] + "\n\n")
        print(f"wrote {args.profile_out}")
    return 0


def _run_bench_check(args: argparse.Namespace) -> int:
    from repro.bench.scale import (
        collect_scale,
        compare_scale,
        render_scale_table,
        write_scale,
    )

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    recorded = [entry["n"] for entry in baseline["entries"]]
    sizes = tuple(
        n
        for n in recorded
        if args.max_nodes is None or n <= args.max_nodes
    )
    if not sizes:
        raise SystemExit(
            f"--max-nodes {args.max_nodes} excludes every recorded size "
            f"{recorded}"
        )
    fresh = collect_scale(sizes=sizes, seed=baseline["workload"]["seed"])
    if args.fresh_out:
        write_scale(args.fresh_out, fresh)
    factors = {}
    if args.wall_factor is not None:
        factors["wall_s"] = factors["cpu_s"] = args.wall_factor
    if args.mem_factor is not None:
        factors["rss_max_kb"] = args.mem_factor
    problems = compare_scale(baseline, fresh, factors=factors)
    print(render_scale_table(fresh))
    if problems:
        print(f"\nbench-check: {len(problems)} regression(s) vs "
              f"{args.baseline}:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nbench-check: OK ({len(sizes)} size(s) vs {args.baseline})")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    from repro.bench.scale import scale_point

    entry = scale_point(
        args.n,
        seed=args.seed,
        profile_memory=args.memory,
        top=args.top,
    )
    text = (
        f"workload: {entry['name']} (n={entry['n']}, "
        f"{entry['messages']} protocol messages)\n"
        + entry["profile_report"]
    )
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


def _run_policies() -> int:
    registry = available_policies()
    width = max(len(name) for name in registry)
    for name, cls in registry.items():
        tags = []
        if cls.loop_free:
            tags.append("loop-free")
        if cls.handles_link_events:
            tags.append("link-events")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"{name:<{width}}  {cls.summary}{suffix}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    networks = (
        ("cairn", "net1") if args.topo == "all" else (args.topo,)
    )
    policies = tuple(args.policy) if args.policy else None
    extra = {}
    if args.duration is not None:
        extra["duration"] = args.duration
    if args.warmup is not None:
        extra["warmup"] = args.warmup
    results = {
        network: figures.policy_zoo(network, policies=policies, **extra)
        for network in networks
    }
    table = figures.render_policy_delay_table(results)
    print(table)
    if args.json_out:
        doc = {
            network: {
                "figure": result.figure,
                "metrics": result.metrics,
                "flow_series": result.flow_series,
            }
            for network, result in results.items()
        }
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(table + "\n")
    return 0


def _run_overhead(args: argparse.Namespace) -> int:
    reports = overhead_experiment(epochs=args.epochs, seed=args.seed)
    text = render_overhead_table(reports)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            _, description = EXPERIMENTS[name]
            print(f"{name:16} {description}")
        return 0

    if args.command == "policies":
        return _run_policies()

    if args.command == "compare":
        return _run_compare(args)

    if args.command == "overhead":
        return _run_overhead(args)

    if args.command == "converge":
        return _run_converge(args)

    if args.command == "packet-converge":
        return _run_packet_converge(args)

    if args.command == "loss-sweep":
        return _run_loss_sweep(args)

    if args.command == "fuzz":
        return _run_fuzz(args)

    if args.command == "fleet":
        return _run_fleet(args)

    if args.command == "replay":
        return _run_replay(args)

    if args.command == "explain":
        return _run_explain(args)

    if args.command == "report":
        return _run_report(args)

    if args.command == "scale-bench":
        return _run_scale_bench(args)

    if args.command == "bench-check":
        return _run_bench_check(args)

    if args.command == "profile":
        return _run_profile(args)

    return _run_experiments(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
