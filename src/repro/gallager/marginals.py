"""Marginal distances and Gallager's optimality conditions.

For destination *j*, the marginal distance of router *i* is
:math:`\\delta_{ij} = \\partial D_T / \\partial r_{ij}` and satisfies the
recursion (Eq. 4 rearranged):

.. math::

    \\delta_{ij} = \\sum_k \\phi_{ijk}\\,(D'_{ik}(f_{ik}) + \\delta_{kj}),
    \\qquad \\delta_{jj} = 0 .

On a loop-free routing graph this evaluates exactly in one pass,
downstream-first.  Gallager's Theorem then characterizes a minimum of
:math:`D_T`: traffic flows only through neighbors whose
:math:`D'_{ik} + \\delta_{kj}` is minimal, and that minimum equals
:math:`\\delta_{ij}` (Eqs. 6-7).  :func:`optimality_gap` measures how
far a routing is from satisfying those conditions — the test suite uses
it to verify OPT actually converges to an optimum.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import RoutingError
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import (
    FLOW_EPSILON,
    Phi,
    destination_successors,
    link_flows,
    node_flows,
)
from repro.fluid.flows import TrafficMatrix
from repro.graph.topology import LinkId, NodeId, Topology
from repro.graph.validation import successor_graph_order

INFINITY = float("inf")


def marginal_distances(
    phi: Phi,
    destination: NodeId,
    link_costs: Mapping[LinkId, float],
    *,
    nodes: list[NodeId] | None = None,
) -> dict[NodeId, float]:
    """:math:`\\delta_{ij}` for every router toward one destination.

    Args:
        phi: routing parameters (must be loop-free for ``destination``).
        destination: the destination *j*.
        link_costs: marginal link delays :math:`D'_{ik}`.
        nodes: optional full node universe; nodes with no successors get
            an infinite marginal distance (no usable route).
    """
    successors = destination_successors(phi, destination)
    order = successor_graph_order(successors, destination)
    delta: dict[NodeId, float] = {destination: 0.0}
    for node in reversed(order):
        if node == destination:
            continue
        succ = successors.get(node, [])
        if not succ:
            continue
        per_dest = phi[node][destination]
        total = 0.0
        norm = 0.0
        for k in succ:
            fraction = per_dest[k]
            if fraction <= 0.0:
                continue
            try:
                cost = link_costs[(node, k)]
            except KeyError:
                raise RoutingError(
                    f"no marginal cost for link {node!r}->{k!r}"
                ) from None
            downstream = delta.get(k)
            if downstream is None:
                raise RoutingError(
                    f"router {node!r} forwards toward {k!r} which has no "
                    f"route to {destination!r}"
                )
            total += fraction * (cost + downstream)
            norm += fraction
        if norm > 0.0:
            delta[node] = total / norm
    if nodes is not None:
        for node in nodes:
            delta.setdefault(node, INFINITY)
    return delta


def optimality_gap(
    topo: Topology,
    phi: Phi,
    traffic: TrafficMatrix,
    delay_model: DelayModel | None = None,
) -> float:
    """Worst violation of Gallager's conditions, as a relative gap.

    For each router *i* and destination *j* carrying traffic, compares
    the largest marginal distance through a neighbor actually used
    (:math:`\\phi > 0`) with the smallest available through any neighbor:

    .. math::

       gap = \\max_{i,j}\\; \\frac{\\max_{k: \\phi_{ijk} > 0} a_{ik} -
       \\min_{k \\in N^i} a_{ik}}{\\min_{k \\in N^i} a_{ik}}

    with :math:`a_{ik} = D'_{ik} + \\delta_{kj}`.  Zero at a minimum of
    :math:`D_T` (Eqs. 6-7); small positive values mean near-optimal.
    """
    model = delay_model or DelayModel.for_topology(topo)
    flows = link_flows(phi, traffic)
    costs = model.marginals(flows)
    worst = 0.0
    for destination in traffic.destinations():
        rates = traffic.rates_to(destination)
        t = node_flows(phi, rates, destination)
        delta = marginal_distances(phi, destination, costs)
        for node in topo.nodes:
            if node == destination:
                continue
            if t.get(node, 0.0) <= FLOW_EPSILON:
                continue  # the conditions only bind where traffic flows
            a = {
                k: costs[(node, k)] + delta.get(k, INFINITY)
                for k in topo.neighbors(node)
            }
            finite = [v for v in a.values() if v < INFINITY]
            if not finite:
                continue
            best = min(finite)
            used = [
                a[k]
                for k, fraction in phi[node][destination].items()
                if fraction > 1e-12 and k in a
            ]
            if not used:
                continue
            gap = (max(used) - best) / best if best > 0 else 0.0
            worst = max(worst, gap)
    return worst
