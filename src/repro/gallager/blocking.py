"""Gallager's blocking technique for instantaneous loop freedom.

Gallager's algorithm only stays loop-free across iterations because a
router may not *shift traffic toward* certain neighbors.  For destination
*j*, a node *k* is **blocked** when

1. *k* has an *improper* outgoing link: it forwards traffic
   (:math:`\\phi_{kjm} > 0`) to a neighbor *m* whose marginal distance is
   not smaller (:math:`\\delta_{mj} \\ge \\delta_{kj}`); or
2. *k* forwards traffic to a node that is itself blocked.

Shifting traffic only toward unblocked neighbors guarantees the routing
graph remains a DAG after the update (the "interesting blocking
technique" the paper credits for OPT's instantaneous loop freedom).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.fluid.evaluator import Phi, destination_successors
from repro.graph.topology import NodeId

INFINITY = float("inf")


def blocked_nodes(
    phi: Phi,
    destination: NodeId,
    delta: Mapping[NodeId, float],
    *,
    tolerance: float = 0.0,
) -> set[NodeId]:
    """The blocked set :math:`B_j` for one destination.

    Args:
        phi: current routing parameters.
        destination: the destination *j*.
        delta: marginal distances :math:`\\delta_{ij}` (missing entries
            are treated as infinite — unreachable nodes are improper to
            route through by definition).
        tolerance: slack on the improperness comparison; a strictly
            positive value treats near-ties as proper, which speeds up
            convergence at a negligible loop-risk cost in a centralized
            computation (kept 0 by default — Gallager's rule).

    Returns:
        The set of nodes traffic may not be shifted toward.
    """
    successors = destination_successors(phi, destination)

    improper: set[NodeId] = set()
    for node, succ in successors.items():
        if node == destination:
            continue
        own = delta.get(node, INFINITY)
        for k in succ:
            if phi[node][destination].get(k, 0.0) <= 0.0:
                continue
            downstream = delta.get(k, INFINITY)
            if downstream >= own + tolerance:
                improper.add(node)
                break

    # Propagate blockedness upstream through phi > 0 edges: a node that
    # forwards into the blocked region is blocked too.
    upstream: dict[NodeId, set[NodeId]] = {}
    for node, succ in successors.items():
        for k in succ:
            if phi[node][destination].get(k, 0.0) > 0.0:
                upstream.setdefault(k, set()).add(node)

    blocked = set(improper)
    frontier = list(improper)
    while frontier:
        node = frontier.pop()
        for parent in upstream.get(node, ()):
            if parent not in blocked:
                blocked.add(parent)
                frontier.append(parent)
    return blocked
