"""Gallager's minimum-delay routing algorithm (the paper's OPT baseline).

Implements the distributed computation of Section 2 in centralized form
(the form the paper uses to obtain lower bounds under stationary
traffic): marginal distances (Eq. 5), the necessary/sufficient optimality
conditions (Eqs. 6-7), the blocking technique that keeps the routing
graph loop-free across iterations, and the gradient-projection update
with the global step size :math:`\\eta` whose criticality the paper
discusses at length.
"""

from repro.gallager.marginals import marginal_distances, optimality_gap
from repro.gallager.blocking import blocked_nodes
from repro.gallager.opt import GallagerResult, optimize, shortest_path_phi

__all__ = [
    "marginal_distances",
    "optimality_gap",
    "blocked_nodes",
    "GallagerResult",
    "optimize",
    "shortest_path_phi",
]
