"""OPT — Gallager's iterative minimum-delay routing algorithm.

The update is Gallager's gradient projection with the global step size
:math:`\\eta`: for each router *i* and destination *j*, with
:math:`a_{ik} = D'_{ik} + \\delta_{kj}` and the best unblocked neighbor
:math:`k_0 = \\arg\\min a_{ik}`,

.. math::

    \\Delta\\phi_{ijk} = \\min\\Big(\\phi_{ijk},\\;
        \\frac{\\eta\\,(a_{ik} - a_{ik_0})}{t_{ij}}\\Big), \\quad
    \\phi_{ijk} \\mathrel{-}= \\Delta\\phi_{ijk}\\;(k \\ne k_0), \\quad
    \\phi_{ijk_0} \\mathrel{+}= \\textstyle\\sum_k \\Delta\\phi_{ijk} .

Routers carrying no traffic for *j* route everything to :math:`k_0`.
Blocked neighbors (see :mod:`repro.gallager.blocking`) are excluded from
the :math:`k_0` choice, which keeps the routing graph loop-free at every
iteration — the library asserts this invariant each step.

Exactly as the paper warns, convergence hinges on the global constant
:math:`\\eta`: too small is slow, too large diverges.  The benchmarks
include a sensitivity sweep over :math:`\\eta` reproducing that
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.exceptions import ConvergenceError, RoutingError
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import (
    FLOW_EPSILON,
    link_flows,
    node_flows,
)
from repro.fluid.flows import TrafficMatrix
from repro.gallager.blocking import blocked_nodes
from repro.gallager.marginals import marginal_distances
from repro.graph.shortest_paths import CostMap, bellman_ford
from repro.graph.topology import NodeId, Topology
from repro.graph.validation import assert_loop_free

INFINITY = float("inf")

MutablePhi = dict[NodeId, dict[NodeId, dict[NodeId, float]]]


def shortest_path_phi(
    topo: Topology,
    destinations: list[NodeId],
    costs: CostMap | None = None,
) -> MutablePhi:
    """Single-shortest-path routing parameters — OPT's starting point.

    Uses idle marginal delays unless ``costs`` is given.  The result is
    loop-free, which the blocking technique then preserves forever.
    """
    cost_map = dict(costs) if costs is not None else topo.idle_marginal_costs()
    phi: MutablePhi = {node: {} for node in topo.nodes}
    for dest in destinations:
        dist = bellman_ford(cost_map, dest, nodes=topo.nodes)
        for node in topo.nodes:
            if node == dest or dist.get(node, INFINITY) == INFINITY:
                continue
            best: NodeId | None = None
            best_val = INFINITY
            for nbr in topo.neighbors(node):
                link_cost = cost_map.get((node, nbr))
                if link_cost is None:
                    continue
                via = dist.get(nbr, INFINITY) + link_cost
                if via < best_val or (via == best_val and repr(nbr) < repr(best)):
                    best, best_val = nbr, via
            if best is None:
                raise RoutingError(
                    f"no route from {node!r} to {dest!r}"
                )
            phi[node][dest] = {best: 1.0}
    return phi


@dataclass
class GallagerResult:
    """Outcome of an OPT run."""

    phi: MutablePhi
    total_delay: float
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)

    @property
    def initial_delay(self) -> float:
        return self.history[0] if self.history else self.total_delay


def optimize(
    topo: Topology,
    traffic: TrafficMatrix,
    *,
    eta: float = 0.1,
    max_iterations: int = 2000,
    tolerance: float = 1e-7,
    patience: int = 20,
    delay_model: DelayModel | None = None,
    initial_phi: MutablePhi | None = None,
    require_convergence: bool = False,
    scaling: str = "none",
) -> GallagerResult:
    """Run Gallager's algorithm to (near) convergence.

    Args:
        topo: the network.
        traffic: stationary input rates (OPT's standing assumption).
        eta: the global step-size constant.  Interpreted in normalized
            form: the raw Gallager step is ``eta_raw = eta * t_total``
            so that a given ``eta`` behaves comparably across load
            levels (the un-normalized rule divides by :math:`t_{ij}`).
        max_iterations: iteration budget.
        tolerance: relative :math:`D_T` improvement under which an
            iteration counts as stalled.
        patience: consecutive stalled iterations that declare convergence.
        delay_model: optional delay laws (defaults to M/M/1 from ``topo``).
        initial_phi: starting parameters (defaults to shortest paths).
        require_convergence: raise instead of returning a non-converged
            result.
        scaling: "none" for Gallager's first-order step, or "curvature"
            for the second-derivative scaling of Bertsekas & Gallager
            (which the paper cites as a convergence speed-up): the shift
            toward the best neighbor approximates the Newton step
            ``gap / (D''_worse + D''_best)`` per unit of traffic.
            Because *all* routers move simultaneously, the per-pair
            Newton step must still be damped — ``eta ~ 0.2`` is robust
            and typically converges in tens of iterations instead of
            thousands (see the MICRO benchmarks).

    Returns:
        A :class:`GallagerResult`; ``history`` holds :math:`D_T` per
        iteration (non-increasing when ``eta`` is small enough).
    """
    if scaling not in ("none", "curvature"):
        raise RoutingError(f"unknown scaling {scaling!r}")
    traffic.validate_against(topo)
    model = delay_model or DelayModel.for_topology(topo)
    destinations = traffic.destinations()
    phi = initial_phi if initial_phi is not None else shortest_path_phi(
        topo, destinations
    )
    total_input = traffic.total_rate()

    ob = obs.current()
    history: list[float] = []
    with obs.phase(ob, "gallager.optimize"):
        converged, iterations = _iterate(
            topo, traffic, model, phi, destinations, total_input,
            eta, max_iterations, tolerance, patience, scaling, history,
        )

    flows = link_flows(phi, traffic)
    final = model.total_delay(flows)
    if ob is not None:
        ob.metrics.counter("gallager.iterations").inc(iterations)
        if ob.tracer.enabled:
            ob.tracer.event(
                "opt_done",
                iterations=iterations,
                converged=converged,
                total_delay=final,
            )
    if require_convergence and not converged:
        raise ConvergenceError(
            f"Gallager's algorithm did not converge in {max_iterations} "
            f"iterations (last D_T = {final:.6g})"
        )
    return GallagerResult(
        phi=phi,
        total_delay=final,
        iterations=iterations,
        converged=converged,
        history=history,
    )


def _iterate(
    topo: Topology,
    traffic: TrafficMatrix,
    model: DelayModel,
    phi: MutablePhi,
    destinations: list[NodeId],
    total_input: float,
    eta: float,
    max_iterations: int,
    tolerance: float,
    patience: int,
    scaling: str,
    history: list[float],
) -> tuple[bool, int]:
    """The optimization loop proper; returns (converged, iterations)."""
    stalled = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        flows = link_flows(phi, traffic)
        d_total = model.total_delay(flows)
        history.append(d_total)
        if len(history) >= 2:
            prev = history[-2]
            if prev - d_total <= tolerance * max(prev, 1e-30):
                stalled += 1
                if stalled >= patience:
                    converged = True
                    break
            else:
                stalled = 0

        costs = model.marginals(flows)
        curvatures = None
        if scaling == "curvature":
            curvatures = {
                link_id: law.second(flows.get(link_id, 0.0))
                for link_id, law in model.functions.items()
            }
        for dest in destinations:
            rates = traffic.rates_to(dest)
            t = node_flows(phi, rates, dest)
            delta = marginal_distances(phi, dest, costs)
            blocked = blocked_nodes(phi, dest, delta)
            _update_destination(
                topo, phi, dest, t, delta, costs, blocked,
                eta * total_input,
                curvatures=curvatures,
                eta=eta,
            )
            assert_loop_free(
                {
                    node: [
                        k for k, v in phi[node].get(dest, {}).items() if v > 0
                    ]
                    for node in phi
                    if node != dest
                },
                dest,
            )
    return converged, iterations


def _update_destination(
    topo: Topology,
    phi: MutablePhi,
    dest: NodeId,
    t: dict[NodeId, float],
    delta: dict[NodeId, float],
    costs: CostMap,
    blocked: set[NodeId],
    eta_raw: float,
    *,
    curvatures: dict | None = None,
    eta: float = 1.0,
) -> None:
    """One Gallager update of every router's parameters toward ``dest``."""
    for node in topo.nodes:
        if node == dest:
            continue
        current = phi[node].get(dest, {})

        a: dict[NodeId, float] = {}
        for nbr in topo.neighbors(node):
            downstream = delta.get(nbr, INFINITY)
            if downstream == INFINITY:
                continue
            a[nbr] = costs[(node, nbr)] + downstream

        candidates = {
            k: v for k, v in a.items() if k not in blocked and k != node
        }
        if not candidates:
            continue  # everything blocked: keep parameters unchanged
        best = min(candidates, key=lambda k: (candidates[k], repr(k)))

        traffic_here = t.get(node, 0.0)
        if traffic_here <= FLOW_EPSILON:
            # No traffic: route everything along the best marginal path.
            # Only re-point when the target's marginal distance is below
            # this node's — the edge then always descends the delta
            # ordering, so re-pointing idle routers can never close a
            # cycle (Gallager's blocking argument only covers routers
            # that carry traffic).
            own = delta.get(node, INFINITY)
            if delta.get(best, INFINITY) < own or own == INFINITY:
                phi[node][dest] = {best: 1.0}
            continue

        updated = dict(current)
        moved = 0.0
        for k, fraction in current.items():
            if k == best or fraction <= 0.0:
                continue
            gap = a.get(k, INFINITY) - candidates[best]
            if gap <= 0.0:
                continue
            if curvatures is not None:
                # Newton-like step: the delay along the move direction
                # has curvature ~ D''(worse link) + D''(best link); the
                # minimizing flow shift is gap / curvature.
                h = curvatures.get((node, k), 0.0) + curvatures.get(
                    (node, best), 0.0
                )
                if h <= 0.0:
                    step = fraction
                else:
                    step = min(
                        fraction, eta * gap / (h * traffic_here)
                    )
            else:
                step = min(fraction, eta_raw * gap / traffic_here)
            updated[k] = fraction - step
            moved += step
        updated[best] = updated.get(best, 0.0) + moved
        phi[node][dest] = {k: v for k, v in updated.items() if v > 0.0}
