"""Discrete-event simulation engine.

A classic calendar-queue design: a binary heap of (time, tier, seq)
ordered events, each holding a zero-argument callback.  Ties in time
break first on an integer *tier* (so, e.g., measurement callbacks can be
ordered after data-plane callbacks at the same instant) and then on
scheduling order, which keeps runs fully deterministic.

The engine is deliberately callback-based rather than coroutine-based:
the simulator's components (links, sources, timers) are state machines,
and callbacks keep the hot path free of generator overhead.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

from repro import obs
from repro.exceptions import SimulationError

Callback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    tier: int
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Engine.schedule`; allows cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: _ScheduledEvent, engine: "Engine") -> None:
        self._event = event
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.fired:
                # The tombstone stays in the heap (lazy deletion) but no
                # longer counts as pending work.
                self._engine._live -= 1

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled


class Engine:
    """The event loop.

    Typical use::

        engine = Engine()
        engine.schedule(1.5, fire)          # relative delay
        engine.schedule_at(10.0, finish)    # absolute time
        engine.run(until=60.0)
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self.processed = 0
        self._live = 0  # scheduled, not yet fired, not cancelled

    def schedule(
        self, delay: float, callback: Callback, *, tier: int = 0
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        return self.schedule_at(self.now + delay, callback, tier=tier)

    def schedule_at(
        self, time: float, callback: Callback, *, tier: int = 0
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self.now!r}"
            )
        heap = self._heap
        if len(heap) > 64 and len(heap) > 2 * self._live:
            # Mostly tombstones: compact before growing further.  The
            # total order on (time, tier, seq) is unchanged, so pop
            # order after heapify is identical to lazy-deletion order.
            heap[:] = [e for e in heap if not e.cancelled]
            heapq.heapify(heap)
        event = _ScheduledEvent(time, tier, next(self._seq), callback)
        heapq.heappush(heap, event)
        self._live += 1
        return EventHandle(event, self)

    def every(
        self,
        interval: float,
        callback: Callback,
        *,
        start: float | None = None,
        tier: int = 0,
    ) -> EventHandle:
        """Run ``callback`` periodically (first firing at ``start`` or
        one interval from now).  Returns the handle of the *next* firing;
        cancelling it stops the series."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval!r}")
        state: dict[str, EventHandle] = {}

        def fire() -> None:
            callback()
            state["handle"] = self.schedule(interval, fire, tier=tier)

        first = start if start is not None else self.now + interval
        state["handle"] = self.schedule_at(first, fire, tier=tier)

        class _Periodic(EventHandle):
            def __init__(self) -> None:  # noqa: D401 - thin proxy
                pass

            def cancel(self) -> None:
                state["handle"].cancel()

            @property
            def time(self) -> float:
                return state["handle"].time

            @property
            def active(self) -> bool:
                return state["handle"].active

        return _Periodic()

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; False when the calendar is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            self.now = event.time
            event.callback()
            self.processed += 1
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Process events until the calendar empties, ``until`` is
        reached (the clock is then advanced to it), or ``max_events``.

        When an observation is active, the whole dispatch loop is timed
        under the ``netsim.engine.run`` phase and the number of events
        processed is counted — aggregate instrumentation, so the
        per-event hot path stays untouched either way.
        """
        ob = obs.current()
        if ob is None:
            self._run(until, max_events)
            return
        before = self.processed
        depth_gauge = ob.metrics.gauge("netsim.engine.queue_depth")
        # len(_heap) counts cancelled tombstones too — a cheap O(1)
        # reading of how much calendar the heap actually holds, which
        # is what memory and heap-op costs scale with.
        depth_gauge.set(len(self._heap))
        started = perf_counter()
        with ob.timers.phase("netsim.engine.run"):
            self._run(until, max_events)
        elapsed = perf_counter() - started
        depth_gauge.set(len(self._heap))
        done = self.processed - before
        ob.metrics.counter("netsim.engine.events").inc(done)
        if done and elapsed > 0:
            ob.metrics.gauge("netsim.engine.events_per_second").set(
                done / elapsed
            )

    def _run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        budget = max_events if max_events is not None else float("inf")
        done = 0
        while self._heap and done < budget:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if not self.step():
                break
            done += 1
        if max_events is not None and done >= budget and self._heap:
            raise SimulationError(f"exceeded event budget of {max_events}")
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Events scheduled and still due to fire (O(1) counter)."""
        return self._live
