"""Assembles a packet-level network from a topology.

:class:`PacketNetwork` builds one :class:`~repro.netsim.node.SimNode`
per router and one :class:`~repro.netsim.link.SimLink` per directed
link, wires delivery paths, and owns the measurement plumbing: per-link
cost estimators fed from the link monitors, and the flow monitor
recording end-to-end delays.

It is routing-agnostic: any :class:`~repro.netsim.node.RoutingProvider`
works, so the same network runs MP, SP, OPT-derived parameters, or a
fixed phi.
"""

from __future__ import annotations

import random

from repro import obs
from repro.core.costs import MM1CostEstimator, OnlineCostEstimator
from repro.exceptions import SimulationError, TopologyError
from repro.obs.metrics import Histogram
from repro.fluid.flows import Flow, TrafficMatrix
from repro.graph.topology import LinkId, NodeId, Topology
from repro.netsim.engine import Engine
from repro.netsim.link import SimLink
from repro.netsim.monitor import FlowMonitor
from repro.netsim.node import RoutingProvider, SimNode
from repro.netsim.packet import Packet
from repro.netsim.traffic import OnOffSource, PoissonSource, ScheduledSource

ESTIMATOR_KINDS = ("mm1", "online")


class PacketNetwork:
    """The packet-level data plane plus measurement.

    Args:
        topo: the network.
        routing: routing-parameter provider consulted per packet.
        seed: master seed; per-component RNGs derive from it.
        service: link service model ("exponential" or "deterministic").
        estimator: link-cost estimator kind ("mm1" uses true capacities,
            "online" is the capacity-free estimator).
        queue_capacity: per-link output buffer in packets (None for the
            paper's lossless model); overflow drops are counted in
            ``flow_monitor.queue_drops``.
    """

    def __init__(
        self,
        topo: Topology,
        routing: RoutingProvider,
        *,
        seed: int = 0,
        service: str = "exponential",
        estimator: str = "mm1",
        queue_capacity: int | None = None,
    ) -> None:
        if estimator not in ESTIMATOR_KINDS:
            raise SimulationError(
                f"unknown estimator {estimator!r}; pick from {ESTIMATOR_KINDS}"
            )
        self.topo = topo
        self.routing = routing
        self.engine = Engine()
        self.flow_monitor = FlowMonitor()
        if obs.current() is not None:
            # Delay quantiles (p50/p90/p99) exist only when someone is
            # watching; the unobserved delivery path stays untouched.
            self.flow_monitor.delay_hist = Histogram()
        master = random.Random(seed)

        self.nodes: dict[NodeId, SimNode] = {}
        for node in topo.nodes:
            self.nodes[node] = SimNode(
                node,
                routing,
                self.flow_monitor,
                random.Random(master.getrandbits(64)),
                topo.num_nodes,
            )

        self.links: dict[LinkId, SimLink] = {}
        self.estimators: dict[LinkId, object] = {}
        for ln in topo.links():
            self.links[ln.link_id] = SimLink(
                self.engine,
                ln,
                self._deliver_closure(ln.tail),
                random.Random(master.getrandbits(64)),
                service=service,
                queue_capacity=queue_capacity,
                on_drop=self.flow_monitor.note_queue_drop,
            )
            if estimator == "mm1":
                self.estimators[ln.link_id] = MM1CostEstimator(
                    ln.capacity, ln.prop_delay
                )
            else:
                self.estimators[ln.link_id] = OnlineCostEstimator()

        for node in topo.nodes:
            self.nodes[node].bind_links(
                {
                    nbr: self.links[(node, nbr)]
                    for nbr in topo.neighbors(node)
                }
            )
        self._source_rng = random.Random(master.getrandbits(64))

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _deliver_closure(self, node: NodeId):
        sim_node = None

        def deliver(packet: Packet) -> None:
            nonlocal sim_node
            if sim_node is None:
                sim_node = self.nodes[node]
            sim_node.receive(packet, self.engine.now)

        return deliver

    def inject(self, packet: Packet) -> None:
        """Inject a packet at its source router."""
        try:
            node = self.nodes[packet.source]
        except KeyError:
            raise TopologyError(f"unknown source {packet.source!r}")
        self.flow_monitor.note_injected(packet.flow)
        node.receive(packet, self.engine.now)

    # ------------------------------------------------------------------
    # workload attachment
    # ------------------------------------------------------------------
    def attach_poisson(
        self,
        traffic: TrafficMatrix,
        *,
        start: float = 0.0,
        stop: float | None = None,
    ) -> list[PoissonSource]:
        """One Poisson source per flow of ``traffic``."""
        traffic.validate_against(self.topo)
        return [
            PoissonSource(
                self.engine,
                self.inject,
                flow,
                random.Random(self._source_rng.getrandbits(64)),
                start=start,
                stop=stop,
            )
            for flow in traffic.flows
        ]

    def attach_onoff(
        self,
        flows: list[Flow],
        *,
        burstiness: float = 4.0,
        mean_on: float = 1.0,
        start: float = 0.0,
        stop: float | None = None,
    ) -> list[OnOffSource]:
        """On-off sources averaging each flow's rate.

        ``burstiness`` is the peak-to-mean ratio; the off period is
        derived so the long-run rate equals ``flow.rate``.
        """
        if burstiness <= 1.0:
            raise SimulationError(
                f"burstiness must exceed 1 (peak/mean), got {burstiness!r}"
            )
        mean_off = mean_on * (burstiness - 1.0)
        return [
            OnOffSource(
                self.engine,
                self.inject,
                flow,
                random.Random(self._source_rng.getrandbits(64)),
                peak_rate=flow.rate * burstiness,
                mean_on=mean_on,
                mean_off=mean_off,
                start=start,
                stop=stop,
            )
            for flow in flows
        ]

    def attach_schedules(
        self,
        flows: list[Flow],
        schedules: dict[str, list[tuple[float, float]]],
        *,
        peak_factor: float,
        stop: float | None = None,
    ) -> list[ScheduledSource]:
        """On-off sources replaying precomputed burst windows.

        ``schedules`` maps a flow label to its (start, end) on-periods
        (e.g. a :class:`~repro.sim.scenario.BurstyScenario`'s), during
        which the flow sends at ``flow.rate * peak_factor``; only the
        packet arrival times within a window are random.
        """
        return [
            ScheduledSource(
                self.engine,
                self.inject,
                flow,
                random.Random(self._source_rng.getrandbits(64)),
                periods=schedules.get(flow.label(), []),
                peak_rate=flow.rate * peak_factor,
                stop=stop,
            )
            for flow in flows
        ]

    # ------------------------------------------------------------------
    # topology dynamics
    # ------------------------------------------------------------------
    def set_link_up(self, link_id: LinkId, up: bool) -> None:
        """Fail or restore one directed link.

        Failing drops the packets queued on it (counted by the flow
        monitor); packets already propagating were transmitted before
        the cut and still arrive.  Idempotent per direction.
        """
        try:
            link = self.links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id!r}")
        if up and not link.up:
            link.restore()
        elif not up and link.up:
            link.fail()

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def measure_costs(self) -> dict[LinkId, float]:
        """Close every link's measurement window and return fresh costs.

        Feeds each window into the link's estimator; call this at each
        ``Ts`` / ``Tl`` boundary.
        """
        costs: dict[LinkId, float] = {}
        now = self.engine.now
        for link_id, link in self.links.items():
            measurement = link.monitor.take_window(now)
            estimator = self.estimators[link_id]
            costs[link_id] = estimator.observe(measurement)
        return costs

    def link_utilizations(self) -> dict[LinkId, float]:
        elapsed = self.engine.now
        return {
            link_id: link.utilization(elapsed)
            for link_id, link in self.links.items()
        }

    def mean_flow_delays(self) -> dict[str, float]:
        """Per-flow mean end-to-end delay (seconds)."""
        return self.flow_monitor.mean_delays()

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self.engine.run(until=until)

    def harvest_metrics(self, registry) -> None:
        """Copy data-plane totals into an observation's registry.

        Records end-to-end packet accounting (injected / delivered /
        dropped / in flight), per-link queue high-water marks — the
        occupancy figures behind the paper's buffering discussion — the
        end-to-end delay quantile sketch, and the queueing /
        transmission / propagation delay decomposition.  Call once, at
        run end: the histogram merge accumulates.
        """
        monitor = self.flow_monitor
        registry.gauge("netsim.packets_injected").set(
            monitor.total_injected()
        )
        registry.gauge("netsim.packets_delivered").set(
            monitor.total_delivered()
        )
        registry.gauge("netsim.no_route_drops").set(monitor.no_route_drops)
        registry.gauge("netsim.queue_drops").set(monitor.queue_drops)
        registry.gauge("netsim.packets_in_flight").set(monitor.in_flight())
        if monitor.delay_hist is not None:
            registry.histogram("netsim.delay.e2e_seconds").merge(
                monitor.delay_hist
            )
        elapsed = self.engine.now
        wait_s = service_s = prop_s = 0.0
        for link_id, link in self.links.items():
            registry.gauge(
                "netsim.queue_high_water", link=link_id
            ).set(link.queue.max_depth)
            registry.gauge(
                "netsim.link_utilization", link=link_id
            ).set(link.utilization(elapsed))
            wait_s += link.monitor.total_wait_s
            service_s += link.monitor.total_service_s
            prop_s += link.monitor.total_prop_s
        # Aggregate end-to-end delay decomposition: total seconds packets
        # spent queueing vs in transmission vs propagating, network-wide.
        registry.gauge("netsim.delay.queueing_s").set(wait_s)
        registry.gauge("netsim.delay.transmission_s").set(service_s)
        registry.gauge("netsim.delay.propagation_s").set(prop_s)
