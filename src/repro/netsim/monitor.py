"""Measurement: per-link windows and per-flow end-to-end statistics.

Links are measured over windows (the paper's ``Ts`` / ``Tl`` intervals):
each window yields the average flow and the average per-packet delay
through the link, which is exactly the :class:`~repro.core.costs.Measurement`
the cost estimators consume.  Flow statistics accumulate end-to-end
delays per flow — the quantity all the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costs import Measurement
from repro.exceptions import SimulationError
from repro.graph.topology import NodeId
from repro.netsim.packet import Packet
from repro.obs.metrics import Histogram


class LinkMonitor:
    """Windowed flow/delay measurement of one directed link.

    ``record`` is called by the link at each packet departure with the
    packet's queueing wait and transmission (service) time — kept
    separately so end-to-end delay decomposes into queueing vs
    transmission vs propagation; ``take_window`` closes the current
    window and returns its measurement.
    """

    def __init__(self, prop_delay: float) -> None:
        self.prop_delay = prop_delay
        self._window_start = 0.0
        self._packets = 0
        self._delay_sum = 0.0
        self.total_packets = 0
        #: Cumulative (whole-run) delay components in seconds.
        self.total_wait_s = 0.0
        self.total_service_s = 0.0
        self.total_prop_s = 0.0

    def record(
        self, wait_s: float, service_s: float, *, propagated: bool = True
    ) -> None:
        self._packets += 1
        self._delay_sum += wait_s + service_s
        self.total_packets += 1
        self.total_wait_s += wait_s
        self.total_service_s += service_s
        if propagated:
            self.total_prop_s += self.prop_delay

    def take_window(self, now: float) -> Measurement:
        """Close the window ending at ``now`` and return its measurement.

        The per-unit delay includes the propagation term so the measured
        cost is comparable to the analytic :math:`D'` (which also does).
        An empty window reports zero flow and the idle delay.
        """
        duration = now - self._window_start
        if duration <= 0:
            raise SimulationError(
                f"empty measurement window at t={now!r}"
            )
        flow = self._packets / duration
        if self._packets:
            per_unit = self._delay_sum / self._packets + self.prop_delay
        else:
            per_unit = self.prop_delay
        self._window_start = now
        self._packets = 0
        self._delay_sum = 0.0
        return Measurement(flow=flow, per_unit_delay=per_unit)


@dataclass
class FlowRecord:
    """Accumulated statistics of one flow."""

    delivered: int = 0
    delay_sum: float = 0.0
    hop_sum: int = 0
    max_delay: float = 0.0

    @property
    def mean_delay(self) -> float:
        return self.delay_sum / self.delivered if self.delivered else 0.0

    @property
    def mean_hops(self) -> float:
        return self.hop_sum / self.delivered if self.delivered else 0.0


@dataclass
class FlowMonitor:
    """End-to-end delivery statistics, per flow and aggregate."""

    flows: dict[str, FlowRecord] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)
    no_route_drops: int = 0
    #: Packets lost at the link layer: queue-overflow drops under a
    #: finite ``queue_limit`` plus packets destroyed by a link failure.
    queue_drops: int = 0
    #: End-to-end delay quantile sketch; attached by the network when an
    #: observation is active (None keeps the unobserved path free).
    delay_hist: Histogram | None = None

    def note_injected(self, flow: str) -> None:
        self.injected[flow] = self.injected.get(flow, 0) + 1

    def note_no_route(self) -> None:
        self.no_route_drops += 1

    def note_queue_drop(self) -> None:
        self.queue_drops += 1

    def note_delivered(self, packet: Packet, now: float) -> None:
        record = self.flows.setdefault(packet.flow, FlowRecord())
        delay = now - packet.created_at
        record.delivered += 1
        record.delay_sum += delay
        record.hop_sum += packet.hops
        if delay > record.max_delay:
            record.max_delay = delay
        if self.delay_hist is not None:
            self.delay_hist.observe(delay)

    def mean_delays(self) -> dict[str, float]:
        """Per-flow mean end-to-end delay in seconds."""
        return {name: rec.mean_delay for name, rec in self.flows.items()}

    def total_delivered(self) -> int:
        return sum(rec.delivered for rec in self.flows.values())

    def total_injected(self) -> int:
        return sum(self.injected.values())

    def total_dropped(self) -> int:
        return self.no_route_drops + self.queue_drops

    def in_flight(self) -> int:
        """Packets injected but not delivered (and not dropped)."""
        return (
            self.total_injected()
            - self.total_delivered()
            - self.no_route_drops
            - self.queue_drops
        )


#: A packet that crosses this many times the network size in hops is
#: almost surely looping; the simulator raises rather than spinning.
HOP_LIMIT_FACTOR = 8


def hop_limit(num_nodes: int) -> int:
    return max(32, HOP_LIMIT_FACTOR * num_nodes)


def check_hop_limit(packet: Packet, num_nodes: int, node: NodeId) -> None:
    if packet.hops > hop_limit(num_nodes):
        raise SimulationError(
            f"{packet!r} exceeded {hop_limit(num_nodes)} hops at {node!r}; "
            "the routing plane is forwarding in a loop"
        )
