"""Traffic sources for the packet simulator.

- :class:`PoissonSource` — Poisson packet arrivals at a fixed mean rate;
  the stationary workload of the paper's Section 5.1 experiments.
- :class:`CBRSource` — constant bit rate (deterministic spacing).
- :class:`OnOffSource` — exponential on/off bursts; the "very bursty"
  dynamic traffic the paper argues single-path routing handles poorly.
- :class:`ScheduledSource` — on/off bursts replaying *precomputed*
  (start, end) windows, so a
  :class:`~repro.sim.scenario.BurstyScenario`'s schedule plays out
  identically on the fluid and packet planes.

All sources take an injection callback ``inject(packet)`` so they are
independent of the network plumbing, and an explicit ``random.Random``
for reproducibility.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.exceptions import SimulationError
from repro.fluid.flows import Flow
from repro.netsim.engine import Engine
from repro.netsim.packet import Packet

InjectFn = Callable[[Packet], None]


class _SourceBase:
    """Common lifecycle: start/stop window, packet construction."""

    def __init__(
        self,
        engine: Engine,
        inject: InjectFn,
        flow: Flow,
        *,
        start: float = 0.0,
        stop: float | None = None,
    ) -> None:
        if stop is not None and stop < start:
            raise SimulationError(f"stop {stop!r} before start {start!r}")
        self.engine = engine
        self.inject = inject
        self.flow = flow
        self.start = start
        self.stop = stop
        self.emitted = 0

    def _within_window(self) -> bool:
        return self.stop is None or self.engine.now < self.stop

    def _emit(self) -> None:
        packet = Packet(
            self.flow.label(),
            self.flow.source,
            self.flow.destination,
            self.engine.now,
        )
        self.emitted += 1
        self.inject(packet)


class PoissonSource(_SourceBase):
    """Poisson arrivals at ``flow.rate`` packets/s."""

    def __init__(
        self,
        engine: Engine,
        inject: InjectFn,
        flow: Flow,
        rng: random.Random,
        *,
        start: float = 0.0,
        stop: float | None = None,
    ) -> None:
        super().__init__(engine, inject, flow, start=start, stop=stop)
        self.rng = rng
        if flow.rate > 0:
            engine.schedule_at(start + self._gap(), self._fire)

    def _gap(self) -> float:
        return self.rng.expovariate(self.flow.rate)

    def _fire(self) -> None:
        if not self._within_window():
            return
        self._emit()
        self.engine.schedule(self._gap(), self._fire)


class CBRSource(_SourceBase):
    """Deterministic arrivals every ``1/rate`` seconds."""

    def __init__(
        self,
        engine: Engine,
        inject: InjectFn,
        flow: Flow,
        *,
        start: float = 0.0,
        stop: float | None = None,
    ) -> None:
        super().__init__(engine, inject, flow, start=start, stop=stop)
        if flow.rate > 0:
            engine.schedule_at(start + 1.0 / flow.rate, self._fire)

    def _fire(self) -> None:
        if not self._within_window():
            return
        self._emit()
        self.engine.schedule(1.0 / self.flow.rate, self._fire)


class OnOffSource(_SourceBase):
    """Exponential on/off bursts.

    During an *on* period (mean ``mean_on`` seconds) packets arrive as a
    Poisson stream at ``peak_rate``; *off* periods (mean ``mean_off``)
    are silent.  The long-run average rate is
    ``peak_rate * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        engine: Engine,
        inject: InjectFn,
        flow: Flow,
        rng: random.Random,
        *,
        peak_rate: float,
        mean_on: float,
        mean_off: float,
        start: float = 0.0,
        stop: float | None = None,
    ) -> None:
        super().__init__(engine, inject, flow, start=start, stop=stop)
        if peak_rate <= 0 or mean_on <= 0 or mean_off < 0:
            raise SimulationError(
                "on/off source needs positive peak rate and on-period"
            )
        self.rng = rng
        self.peak_rate = peak_rate
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.on_until = 0.0
        engine.schedule_at(start, self._begin_on)

    @property
    def average_rate(self) -> float:
        return self.peak_rate * self.mean_on / (self.mean_on + self.mean_off)

    def _begin_on(self) -> None:
        if not self._within_window():
            return
        duration = self.rng.expovariate(1.0 / self.mean_on)
        self.on_until = self.engine.now + duration
        self.engine.schedule(duration, self._begin_off)
        self.engine.schedule(
            self.rng.expovariate(self.peak_rate), self._fire
        )

    def _begin_off(self) -> None:
        if not self._within_window():
            return
        if self.mean_off == 0:
            self._begin_on()
            return
        self.engine.schedule(
            self.rng.expovariate(1.0 / self.mean_off), self._begin_on
        )

    def _fire(self) -> None:
        if not self._within_window() or self.engine.now > self.on_until:
            return
        self._emit()
        self.engine.schedule(self.rng.expovariate(self.peak_rate), self._fire)


class ScheduledSource(_SourceBase):
    """Poisson arrivals at ``peak_rate`` during precomputed on-periods.

    Unlike :class:`OnOffSource` (which draws its own exponential
    periods), the on/off pattern is given as explicit ``(start, end)``
    windows — only the packet arrival times within a window are random.
    """

    def __init__(
        self,
        engine: Engine,
        inject: InjectFn,
        flow: Flow,
        rng: random.Random,
        *,
        periods: list[tuple[float, float]],
        peak_rate: float,
        stop: float | None = None,
    ) -> None:
        super().__init__(engine, inject, flow, stop=stop)
        if peak_rate <= 0:
            raise SimulationError(
                f"scheduled source needs a positive peak rate, "
                f"got {peak_rate!r}"
            )
        self.rng = rng
        self.peak_rate = peak_rate
        self.on_until = 0.0
        for start, end in periods:
            if end <= start:
                raise SimulationError(
                    f"empty on-period ({start!r}, {end!r})"
                )
            if stop is not None and start >= stop:
                break
            engine.schedule_at(start, self._begin_closure(end))

    def _begin_closure(self, end: float):
        return lambda: self._begin_on(end)

    def _begin_on(self, end: float) -> None:
        if not self._within_window():
            return
        self.on_until = end
        self.engine.schedule(self.rng.expovariate(self.peak_rate), self._fire)

    def _fire(self) -> None:
        if not self._within_window() or self.engine.now > self.on_until:
            return
        self._emit()
        self.engine.schedule(self.rng.expovariate(self.peak_rate), self._fire)
