"""Output queues for simulated links.

The paper's model assumes no packet loss ("Assuming that the network
does not lose any packets"), so the default queue is unbounded; a finite
``capacity`` is available for overload experiments, with drops counted
rather than silently ignored.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import Packet


class FIFOQueue:
    """A FIFO packet queue with waiting-time accounting."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"queue capacity must be >= 0: {capacity!r}")
        self.capacity = capacity
        self._items: deque[tuple[Packet, float]] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.max_depth = 0

    def push(self, packet: Packet, now: float) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append((packet, now))
        self.enqueued += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        return True

    def pop(self) -> tuple[Packet, float]:
        """Dequeue the oldest packet with its enqueue time."""
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
