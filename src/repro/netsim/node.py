"""Simulated routers: per-destination weighted packet splitting.

A :class:`SimNode` forwards each packet to a neighbor drawn according to
the current routing parameters :math:`\\phi^i_{jk}` — the packet-level
realization of Eq. (15)'s fractional allocation.  The routing parameters
come from a *provider* (anything with ``fractions(node, dest)``, e.g.
:class:`repro.core.router.MPRouting`), so the data plane follows
allocation changes immediately without rebuilding anything.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import Protocol

from repro.exceptions import SimulationError
from repro.graph.topology import NodeId
from repro.netsim.monitor import FlowMonitor, check_hop_limit
from repro.netsim.packet import Packet


class RoutingProvider(Protocol):
    """Anything that can answer "how do I split traffic at this router?"."""

    def fractions(self, node: NodeId, destination: NodeId) -> Mapping[NodeId, float]:
        """Routing parameters of ``node`` toward ``destination``."""
        ...


class StaticRouting:
    """A fixed phi mapping as a routing provider (tests, examples)."""

    def __init__(
        self, phi: Mapping[NodeId, Mapping[NodeId, Mapping[NodeId, float]]]
    ) -> None:
        self._phi = phi

    def fractions(self, node: NodeId, destination: NodeId) -> Mapping[NodeId, float]:
        return self._phi.get(node, {}).get(destination, {})


class SimNode:
    """One router in the packet simulator."""

    def __init__(
        self,
        node_id: NodeId,
        routing: RoutingProvider,
        flow_monitor: FlowMonitor,
        rng: random.Random,
        num_nodes: int,
    ) -> None:
        self.node_id = node_id
        self.routing = routing
        self.flow_monitor = flow_monitor
        self.rng = rng
        self.num_nodes = num_nodes
        #: out_links[nbr] is installed by the network builder.
        self.out_links: dict[NodeId, "object"] = {}

    def bind_links(self, out_links: Mapping[NodeId, "object"]) -> None:
        self.out_links = dict(out_links)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, now: float) -> None:
        """A packet arrived at this router (from a link or injection)."""
        if packet.destination == self.node_id:
            self.flow_monitor.note_delivered(packet, now)
            return
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Pick a successor per the routing parameters and transmit."""
        packet.hops += 1
        check_hop_limit(packet, self.num_nodes, self.node_id)
        fractions = self.routing.fractions(self.node_id, packet.destination)
        choice = self._choose(fractions)
        if choice is None:
            self.flow_monitor.note_no_route()
            return
        link = self.out_links.get(choice)
        if link is None:
            raise SimulationError(
                f"router {self.node_id!r} routed to {choice!r} but has no "
                "such link"
            )
        link.send(packet)

    def _choose(self, fractions: Mapping[NodeId, float]) -> NodeId | None:
        """Weighted random successor; None when there is no route."""
        total = 0.0
        usable: list[tuple[NodeId, float]] = []
        for nbr, fraction in fractions.items():
            if fraction > 0.0 and nbr in self.out_links:
                usable.append((nbr, fraction))
                total += fraction
        if not usable:
            return None
        if len(usable) == 1:
            return usable[0][0]
        pick = self.rng.random() * total
        acc = 0.0
        for nbr, fraction in usable:
            acc += fraction
            if pick <= acc:
                return nbr
        return usable[-1][0]  # floating-point slack
