"""Packet-level discrete-event network simulator.

A from-scratch substrate (no simpy in this offline environment) used for
packet-granularity experiments and for validating the fluid model:

- :mod:`repro.netsim.engine` — the event scheduler;
- :mod:`repro.netsim.packet` / :mod:`queueing` / :mod:`link` /
  :mod:`node` — the data plane (FIFO output queues, transmission +
  propagation, per-destination weighted splitting);
- :mod:`repro.netsim.traffic` — Poisson / CBR / on-off sources;
- :mod:`repro.netsim.monitor` — delay and flow measurement windows;
- :mod:`repro.netsim.control` — timed delivery of LSU messages so the
  MPDA routers of :mod:`repro.core` can run inside the simulator;
- :mod:`repro.netsim.network` — assembles everything from a
  :class:`~repro.graph.topology.Topology`.
"""

from repro.netsim.engine import Engine
from repro.netsim.packet import Packet
from repro.netsim.network import PacketNetwork
from repro.netsim.traffic import CBRSource, OnOffSource, PoissonSource

__all__ = [
    "Engine",
    "Packet",
    "PacketNetwork",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
]
