"""Simulated links: FIFO queue, transmission, propagation.

A :class:`SimLink` is one *direction* of a physical link.  Service times
default to exponential with mean :math:`1/C` so a Poisson-fed link is an
M/M/1 queue — matching the delay law the paper's cost function assumes
(Eq. 24); ``service="deterministic"`` turns it into M/D/1 for studying
how sensitive the framework is to that assumption (the paper notes the
M/M/1 assumption "does not hold in practice in the presence of very
bursty traffic").
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.exceptions import SimulationError
from repro.graph.topology import Link
from repro.netsim.engine import Engine
from repro.netsim.monitor import LinkMonitor
from repro.netsim.packet import Packet
from repro.netsim.queueing import FIFOQueue

DeliverFn = Callable[[Packet], None]

SERVICE_MODELS = ("exponential", "deterministic")


class SimLink:
    """One directed link in the simulator.

    Args:
        engine: the event engine.
        link: the topology link (capacity in packets/s, prop delay in s).
        deliver: callback invoked at the receiving node when a packet
            finishes propagation.
        rng: random source for service times.
        service: "exponential" (M/M/1) or "deterministic" (M/D/1).
        queue_capacity: None for the paper's lossless model.
        on_drop: invoked once per packet this link destroys (queue
            overflow or link failure), so end-to-end accounting stays
            balanced under finite buffers.
    """

    def __init__(
        self,
        engine: Engine,
        link: Link,
        deliver: DeliverFn,
        rng: random.Random,
        *,
        service: str = "exponential",
        queue_capacity: int | None = None,
        on_drop: Callable[[], None] | None = None,
    ) -> None:
        if service not in SERVICE_MODELS:
            raise SimulationError(
                f"unknown service model {service!r}; pick from {SERVICE_MODELS}"
            )
        self.engine = engine
        self.link = link
        self.deliver = deliver
        self.rng = rng
        self.service = service
        self.queue = FIFOQueue(queue_capacity)
        self.on_drop = on_drop
        self.monitor = LinkMonitor(link.prop_delay)
        self.busy = False
        self.up = True
        self.busy_time = 0.0
        self._service_started = 0.0

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Hand a packet to this link at the current simulated time."""
        if not self.up:
            self.queue.dropped += 1
            self._note_drop()
            return
        now = self.engine.now
        if self.busy:
            if not self.queue.push(packet, now):
                self._note_drop()
        else:
            self._begin_service(packet, arrived=now)

    def _note_drop(self) -> None:
        if self.on_drop is not None:
            self.on_drop()

    def _begin_service(self, packet: Packet, arrived: float) -> None:
        self.busy = True
        self._service_started = self.engine.now
        self.engine.schedule(
            self._service_time(), lambda: self._finish_service(packet, arrived)
        )

    def _service_time(self) -> float:
        mean = 1.0 / self.link.capacity
        if self.service == "deterministic":
            return mean
        return self.rng.expovariate(self.link.capacity)

    def _finish_service(self, packet: Packet, arrived: float) -> None:
        now = self.engine.now
        self.busy_time += now - self._service_started
        # Queueing wait ends when service begins; the split feeds the
        # end-to-end delay decomposition in the run reports.
        self.monitor.record(
            self._service_started - arrived,
            now - self._service_started,
            propagated=self.up,
        )
        if self.up:
            self.engine.schedule(
                self.link.prop_delay, lambda: self.deliver(packet)
            )
        else:
            self._note_drop()  # lost with the link mid-transmission
        if self.queue:
            next_packet, enqueue_time = self.queue.pop()
            self._begin_service(next_packet, arrived=enqueue_time)
        else:
            self.busy = False

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the link down; queued packets are dropped."""
        self.up = False
        while self.queue:
            self.queue.pop()
            self.queue.dropped += 1
            self._note_drop()

    def restore(self) -> None:
        self.up = True

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent transmitting."""
        if elapsed <= 0:
            return 0.0
        busy = self.busy_time
        if self.busy:
            busy += self.engine.now - self._service_started
        return busy / elapsed
