"""Timed control plane: MPDA inside the discrete-event simulator.

The synchronous :class:`~repro.core.driver.ProtocolDriver` explores
delivery *orders*; this module adds real *time*: LSU messages propagate
over the physical links with their propagation delays (plus an optional
per-message processing delay), satisfying the paper's assumption that
messages on an operational link arrive correctly, in order, within a
finite time.

In-order delivery holds because every message on a link experiences the
same latency and the engine breaks time ties in scheduling order.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.linkstate import LSUMessage
from repro.core.mpda import MPDARouter, check_safety
from repro.core.pda import PDARouter
from repro.exceptions import RoutingError, TopologyError
from repro.graph.shortest_paths import CostMap
from repro.graph.topology import NodeId, Topology
from repro.netsim.engine import Engine

#: Event tier for control messages: processed after data-plane events at
#: the same instant, so measurements see a consistent data plane.
CONTROL_TIER = 1


class ControlPlane:
    """Delivers LSUs between protocol routers over simulated links."""

    def __init__(
        self,
        engine: Engine,
        topo: Topology,
        routers: Mapping[NodeId, PDARouter],
        *,
        processing_delay: float = 0.0,
        check_invariants: bool = False,
    ) -> None:
        self.engine = engine
        self.topo = topo
        self.routers = dict(routers)
        self.processing_delay = processing_delay
        self.check_invariants = check_invariants
        self.delivered = 0
        self.in_flight = 0
        self._started = False
        self._failed: set[tuple[NodeId, NodeId]] = set()

    # ------------------------------------------------------------------
    def start(self, costs: CostMap) -> None:
        """Bring up all adjacent links at the current simulated time."""
        if self._started:
            raise RoutingError("control plane already started")
        self._started = True
        for node, router in self.routers.items():
            for nbr in self.topo.neighbors(node):
                router.link_up(nbr, self._cost(costs, node, nbr))
                self._flush(router)

    def set_costs(self, costs: Mapping[tuple[NodeId, NodeId], float]) -> None:
        """Inject adjacent-link cost changes (long-term updates)."""
        for (head, tail), cost in costs.items():
            router = self.routers[head]
            if tail not in router.link_costs:
                continue  # link currently down
            if router.link_costs[tail] == cost:
                continue
            router.link_cost_change(tail, cost)
            self._flush(router)

    def fail_link(self, a: NodeId, b: NodeId) -> None:
        """Fail the duplex link (in-flight LSUs on it are lost)."""
        self._failed.add((a, b))
        self._failed.add((b, a))
        for head, tail in ((a, b), (b, a)):
            router = self.routers[head]
            if tail in router.link_costs:
                router.link_down(tail)
                self._flush(router)

    def restore_link(
        self, a: NodeId, b: NodeId, cost_ab: float, cost_ba: float
    ) -> None:
        self._failed.discard((a, b))
        self._failed.discard((b, a))
        for head, tail, cost in ((a, b, cost_ab), (b, a, cost_ba)):
            self.routers[head].link_up(tail, cost)
            self._flush(self.routers[head])

    # ------------------------------------------------------------------
    def _flush(self, router: PDARouter) -> None:
        """Schedule everything in the router's outbox for delivery."""
        for nbr, message in router.outbox:
            link_id = (router.node_id, nbr)
            if link_id in self._failed or not self.topo.has_link(*link_id):
                continue
            latency = (
                self.topo.link(*link_id).prop_delay + self.processing_delay
            )
            self.in_flight += 1
            self.engine.schedule(
                latency,
                self._deliver_closure(link_id, message),
                tier=CONTROL_TIER,
            )
        router.outbox.clear()

    def _deliver_closure(self, link_id, message: LSUMessage):
        def deliver() -> None:
            self.in_flight -= 1
            if link_id in self._failed:
                return  # lost with the link
            receiver = self.routers[link_id[1]]
            receiver.receive(message)
            self.delivered += 1
            self._flush(receiver)
            if self.check_invariants:
                mpda = {
                    node: r
                    for node, r in self.routers.items()
                    if isinstance(r, MPDARouter)
                }
                if mpda:
                    check_safety(mpda)

        return deliver

    def quiescent(self) -> bool:
        """True when no control messages are in flight."""
        return self.in_flight == 0

    @staticmethod
    def _cost(costs: CostMap, head: NodeId, tail: NodeId) -> float:
        try:
            return costs[(head, tail)]
        except KeyError:
            raise TopologyError(
                f"no initial cost for {head!r}->{tail!r}"
            ) from None
