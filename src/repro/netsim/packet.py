"""Packets — the data-plane unit of the simulator.

Packets are mutable (they accumulate a hop count) but deliberately tiny:
the simulator may create millions of them, so ``__slots__`` keeps the
per-packet footprint small.
"""

from __future__ import annotations

import itertools

from repro.graph.topology import NodeId

_ids = itertools.count(1)


class Packet:
    """One packet travelling from ``source`` to ``destination``.

    Attributes:
        flow: label of the flow it belongs to (figure x-axes group on it).
        created_at: injection time, for end-to-end delay accounting.
        hops: links traversed so far — a loop detector's raw material.
    """

    __slots__ = (
        "packet_id",
        "flow",
        "source",
        "destination",
        "created_at",
        "hops",
    )

    def __init__(
        self,
        flow: str,
        source: NodeId,
        destination: NodeId,
        created_at: float,
    ) -> None:
        self.packet_id = next(_ids)
        self.flow = flow
        self.source = source
        self.destination = destination
        self.created_at = created_at
        self.hops = 0

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.packet_id} {self.flow}: "
            f"{self.source!r}->{self.destination!r}, hops={self.hops})"
        )
