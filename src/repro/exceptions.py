"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation references a missing element."""


class RoutingError(ReproError):
    """A routing computation was asked to do something inconsistent."""


class LoopError(RoutingError):
    """A successor graph that must be loop-free contains a cycle.

    Raised by safety monitors; if this ever fires during an MPDA run it
    means the Loop-Free Invariant (Theorem 1 of the paper) was violated.
    """


class CapacityError(ReproError):
    """A link flow meets or exceeds link capacity where that is not allowed."""


class AllocationError(RoutingError):
    """Routing parameters violate Property 1 of the paper."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class ConfigError(ReproError):
    """A run configuration references something that does not exist.

    Raised by the policy registry when a run names an unknown routing
    policy (or a legacy ``mode`` string that maps to none); the message
    always lists the registered policy names so typos are self-repairing.
    """
