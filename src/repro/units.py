"""Units used throughout the library.

The paper's delay law :math:`D(f) = f/(C-f) + \\tau f` gives per-unit
delays of :math:`1/(C-f) + \\tau`; for that queueing term to be the delay
a *packet* experiences, flows and capacities must be measured in
**packets per second** (an M/M/1 queue of packets with mean size
:data:`PACKET_SIZE_BITS`).  All capacities, flow rates and traffic
matrices in this library are therefore in packets/s; delays are in
seconds.  Use :func:`mbps` to express the paper's "Mb/s" figures.
"""

from __future__ import annotations

#: Mean packet size assumed when converting bit rates to packet rates.
PACKET_SIZE_BYTES = 1000
PACKET_SIZE_BITS = 8 * PACKET_SIZE_BYTES


def mbps(rate_mbps: float) -> float:
    """Convert megabits/s to packets/s (e.g. ``mbps(10)`` = 1250 pkt/s)."""
    return rate_mbps * 1e6 / PACKET_SIZE_BITS


def to_mbps(rate_pps: float) -> float:
    """Convert packets/s back to megabits/s (for reports)."""
    return rate_pps * PACKET_SIZE_BITS / 1e6


def ms(seconds: float) -> float:
    """Seconds to milliseconds (the unit of the paper's delay axes)."""
    return seconds * 1e3
