"""Protocol-overhead accounting: MPDA vs. topology-broadcast flooding.

The paper argues MPDA's partial-topology dissemination sends fewer
messages than topology-broadcast ("flooding") link-state protocols, but
reports no table.  This experiment produces one: both control planes
face the same workload — a cold start followed by epochs in which every
adjacent link cost changes (the long-term measurement updates of the
two-timescale discipline) — and we count point-to-point control-message
transmissions on each side.

- **MPDA**: the real exchange through
  :class:`~repro.core.driver.ProtocolDriver`, run to quiescence per
  epoch; the count includes ACKs (they are the price of instantaneous
  loop freedom and must not be hidden).
- **Flooding**: classic reliable LSA flooding — each router originates
  one LSA describing its adjacent links; a router forwards a new LSA on
  every link except the arrival link, and duplicate receptions still
  cost a transmission.  This is the OSPF-style broadcast the paper
  compares against.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.graph.topologies import cairn, net1
from repro.graph.topology import NodeId, Topology


def flood_lsa(topo: Topology, origin: NodeId) -> int:
    """Transmissions to flood one LSA from ``origin`` network-wide."""
    messages = 0
    seen = {origin}
    pending: deque[tuple[NodeId, NodeId]] = deque()
    for nbr in topo.neighbors(origin):
        pending.append((origin, nbr))
        messages += 1
    while pending:
        sender, node = pending.popleft()
        if node in seen:
            continue  # duplicate reception: received, not re-flooded
        seen.add(node)
        for nbr in topo.neighbors(node):
            if nbr != sender:
                pending.append((node, nbr))
                messages += 1
    return messages


def flooding_full_update(topo: Topology) -> int:
    """Transmissions for every router to flood its LSA once.

    This is the per-epoch cost of a topology-broadcast protocol under
    the two-timescale discipline, and also its cold-start cost.
    """
    return sum(flood_lsa(topo, node) for node in topo.nodes)


@dataclass
class OverheadReport:
    """Message counts of one topology under both control planes."""

    topology: str
    nodes: int
    links: int  # directed links
    epochs: int
    mpda_cold_start: int
    mpda_per_epoch: list[int] = field(default_factory=list)
    flooding_cold_start: int = 0
    flooding_per_epoch: int = 0
    mpda_entries_sent: int = 0

    @property
    def mpda_update_mean(self) -> float:
        if not self.mpda_per_epoch:
            return 0.0
        return sum(self.mpda_per_epoch) / len(self.mpda_per_epoch)

    @property
    def update_ratio(self) -> float:
        """Flooding-to-MPDA message ratio per update epoch (>1 = MPDA wins)."""
        mean = self.mpda_update_mean
        return self.flooding_per_epoch / mean if mean else float("inf")


def measure_overhead(
    topo: Topology,
    name: str,
    *,
    epochs: int = 5,
    jitter: float = 0.3,
    seed: int = 0,
) -> OverheadReport:
    """Drive both control planes through the same cost-change workload."""
    costs = topo.idle_marginal_costs()
    driver = ProtocolDriver(topo, MPDARouter, seed=seed)
    driver.start(costs)
    cold = driver.run()
    driver.verify_converged()

    rng = random.Random(seed)
    per_epoch: list[int] = []
    for _ in range(epochs):
        # Every adjacent link re-measures its marginal delay: the
        # long-term (Tl) update in which both protocols must propagate
        # fresh costs.
        new_costs = {
            link_id: cost * (1.0 + jitter * (2.0 * rng.random() - 1.0))
            for link_id, cost in costs.items()
        }
        driver.set_costs(new_costs)
        per_epoch.append(driver.run())
        costs = new_costs

    return OverheadReport(
        topology=name,
        nodes=topo.num_nodes,
        links=topo.num_links,
        epochs=epochs,
        mpda_cold_start=cold,
        mpda_per_epoch=per_epoch,
        flooding_cold_start=flooding_full_update(topo),
        flooding_per_epoch=flooding_full_update(topo),
        mpda_entries_sent=sum(
            r.entries_sent for r in driver.routers.values()
        ),
    )


def overhead_experiment(
    *, epochs: int = 5, seed: int = 0
) -> list[OverheadReport]:
    """The paper's two evaluation topologies under both control planes."""
    return [
        measure_overhead(cairn(), "CAIRN", epochs=epochs, seed=seed),
        measure_overhead(net1(), "NET1", epochs=epochs, seed=seed),
    ]


def render_overhead_table(reports: list[OverheadReport]) -> str:
    """Plain-text table of the MPDA vs. flooding message counts."""
    header = (
        "topology".ljust(10)
        + "nodes".rjust(6)
        + "links".rjust(6)
        + "cold:MPDA".rjust(11)
        + "cold:flood".rjust(11)
        + "upd:MPDA".rjust(10)
        + "upd:flood".rjust(10)
        + "flood/MPDA".rjust(11)
    )
    lines = [
        "protocol overhead (control messages, per cold start / per Tl update)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for report in reports:
        lines.append(
            report.topology.ljust(10)
            + f"{report.nodes}".rjust(6)
            + f"{report.links}".rjust(6)
            + f"{report.mpda_cold_start}".rjust(11)
            + f"{report.flooding_cold_start}".rjust(11)
            + f"{report.mpda_update_mean:.1f}".rjust(10)
            + f"{report.flooding_per_epoch}".rjust(10)
            + f"{report.update_ratio:.2f}".rjust(11)
        )
    lines.append("-" * len(header))
    lines.append(
        "(MPDA counts include ACKs; flooding = every router's LSA "
        "forwarded on all links except the arrival link)"
    )
    return "\n".join(lines)
