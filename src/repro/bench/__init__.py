"""Benchmark harness: regenerates every figure of the paper's Section 5.

Each function in :mod:`repro.bench.figures` reproduces one figure's data
series; :mod:`repro.bench.reporting` renders them as the tables the
``benchmarks/`` suite prints and records.  See DESIGN.md §3 for the
experiment index and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.bench.figures import (
    FigureResult,
    abl_allocation,
    abl_successors,
    dyn_bursty,
    fig09_cairn_opt_vs_mp,
    fig10_net1_opt_vs_mp,
    fig11_cairn_mp_vs_sp,
    fig12_net1_mp_vs_sp,
    fig13_cairn_tl_sweep,
    fig14_net1_tl_sweep,
)
from repro.bench.reporting import render_flow_table, render_series

__all__ = [
    "FigureResult",
    "fig09_cairn_opt_vs_mp",
    "fig10_net1_opt_vs_mp",
    "fig11_cairn_mp_vs_sp",
    "fig12_net1_mp_vs_sp",
    "fig13_cairn_tl_sweep",
    "fig14_net1_tl_sweep",
    "dyn_bursty",
    "abl_allocation",
    "abl_successors",
    "render_flow_table",
    "render_series",
]
