"""Loss-rate sweep: protocol overhead and convergence cost vs. loss.

The paper assumes reliable, in-order delivery and never prices that
assumption.  This experiment does: MPDA runs the standard cold-start /
fail / restore workload over :class:`~repro.core.transport.ReliableTransport`
wrapped around a :class:`~repro.core.transport.FaultyChannel` whose loss
rate is swept, and we count what enforcing the delivery model costs in
wire frames (retransmissions, timeouts, ACKs) while verifying that the
protocol above still converges to the Dijkstra oracle with a clean
online LFI audit.

The loss=0 row is the baseline price of reliability itself (pure ACK
overhead, no retransmissions); the sweep shows how that grows with the
drop rate.  Counts are exactly reproducible: one (driver seed,
transport seed) pair fully determines a run.

Run it via ``python -m repro loss-sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.bench.convergence import pick_failure_link
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.core.transport import FaultyChannel, ReliableTransport
from repro.graph.topologies import cairn, net1
from repro.graph.topology import NodeId, Topology

#: Default swept loss rates (fraction of wire frames silently dropped).
DEFAULT_RATES = (0.0, 0.05, 0.10, 0.20)


@dataclass
class LossSweepResult:
    """One audited failover run at one loss rate."""

    topology: str
    loss: float
    failed_link: tuple[NodeId, NodeId]
    #: LSU/ACK payloads delivered to routers per convergence window.
    cold_messages: int = 0
    fail_messages: int = 0
    restore_messages: int = 0
    #: Reliable-transport + wire counters (see ``Transport.stats``).
    transport: dict[str, int] = field(default_factory=dict)
    audit: dict = field(default_factory=dict)

    @property
    def messages(self) -> int:
        return self.cold_messages + self.fail_messages + self.restore_messages

    @property
    def wire_frames(self) -> int:
        """Wire frames offered to the channel (incl. the ones it lost)."""
        return (
            self.transport.get("wire_sent", 0)
            + self.transport.get("wire_drops", 0)
            + self.transport.get("wire_partition_drops", 0)
        )

    @property
    def overhead(self) -> float:
        """Wire frames offered per protocol message the driver sent."""
        data = self.transport.get("data_sent", 0)
        return self.wire_frames / data if data else 0.0

    def as_dict(self) -> dict:
        return {
            "topology": self.topology,
            "loss": self.loss,
            "failed_link": list(self.failed_link),
            "cold_messages": self.cold_messages,
            "fail_messages": self.fail_messages,
            "restore_messages": self.restore_messages,
            "transport": dict(self.transport),
            "overhead": round(self.overhead, 4),
            "audit": dict(self.audit),
        }


def loss_experiment(
    topo: Topology,
    name: str,
    *,
    loss: float,
    seed: int = 0,
    transport_seed: int = 7,
    timeout: int = 8,
    max_retries: int = 50,
) -> LossSweepResult:
    """Cold start / fail / restore over a lossy wire, oracle-verified.

    Runs under whatever observation is current (``repro loss-sweep``
    enables the online auditor, so Theorem 3 is machine-checked after
    every delivery even while retransmissions reorder the interleaving).
    """
    costs = topo.idle_marginal_costs()
    transport = ReliableTransport(
        FaultyChannel(seed=transport_seed, loss=loss),
        timeout=timeout,
        max_retries=max_retries,
    )
    driver = ProtocolDriver(topo, MPDARouter, seed=seed, transport=transport)
    a, b = pick_failure_link(topo)
    result = LossSweepResult(topology=name, loss=loss, failed_link=(a, b))

    driver.start(costs)
    result.cold_messages = driver.run()
    driver.verify_converged()

    driver.fail_link(a, b)
    result.fail_messages = driver.run()
    driver.verify_converged()

    driver.restore_link(a, b, costs[(a, b)], costs[(b, a)])
    result.restore_messages = driver.run()
    driver.verify_converged()

    result.transport = transport.stats()
    ob = obs.current()
    if ob is not None and ob.auditor is not None:
        result.audit = ob.auditor.summary()
    return result


def loss_sweep(
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    seed: int = 0,
    topologies: tuple[str, ...] = ("cairn", "net1"),
) -> list[LossSweepResult]:
    """The failover workload across ``rates`` on the evaluation topologies."""
    factories = {"cairn": (cairn, "CAIRN"), "net1": (net1, "NET1")}
    results = []
    for key in topologies:
        factory, label = factories[key]
        for loss in rates:
            results.append(
                loss_experiment(factory(), label, loss=loss, seed=seed)
            )
    return results


def render_loss_table(results: list[LossSweepResult]) -> str:
    """Plain-text table of the loss sweep."""
    header = (
        "topology".ljust(10)
        + "loss".rjust(6)
        + "cold".rjust(7)
        + "fail".rjust(7)
        + "restore".rjust(9)
        + "retx".rjust(7)
        + "t/outs".rjust(8)
        + "wire".rjust(8)
        + "overhd".rjust(8)
        + "audit".rjust(7)
    )
    lines = [
        "convergence and overhead vs. wire loss "
        "(reliable transport over a lossy channel, audited)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    previous = None
    for result in results:
        verdict = result.audit.get("verdict", "n/a")
        lines.append(
            (result.topology if result.topology != previous else "").ljust(10)
            + f"{result.loss:.0%}".rjust(6)
            + f"{result.cold_messages}".rjust(7)
            + f"{result.fail_messages}".rjust(7)
            + f"{result.restore_messages}".rjust(9)
            + f"{result.transport.get('retransmits', 0)}".rjust(7)
            + f"{result.transport.get('timeouts', 0)}".rjust(8)
            + f"{result.wire_frames}".rjust(8)
            + f"{result.overhead:.2f}x".rjust(8)
            + verdict.rjust(7)
        )
        previous = result.topology
    lines.append("-" * len(header))
    lines.append(
        "(messages are payloads delivered per convergence window; overhead "
        "= wire frames offered / LSUs sent, so the loss=0 row is the pure "
        "ACK cost of reliability)"
    )
    return "\n".join(lines)
