"""Plain-text rendering of figure data (the paper's plots as tables)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _empty_table(title: str, unit: str) -> str:
    """Stub rendering for a figure with no series at all."""
    return "\n".join([title, "(no series)", f"(values in {unit})"])


def render_flow_table(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    *,
    unit: str = "ms",
) -> str:
    """A per-flow table: rows are flow ids, columns are run labels.

    This is the textual form of Figs. 9-12 (flow id on the x-axis, one
    curve per run label).  An empty ``series`` yields a stub table
    rather than a crash (``max(10, *())`` would raise TypeError).
    """
    labels = list(series)
    if not labels:
        return _empty_table(title, unit)
    flows: list[str] = []
    for values in series.values():
        for flow in values:
            if flow not in flows:
                flows.append(flow)
    flows.sort(key=lambda f: (len(f), f))  # f0, f1, ..., f10

    width = max(10, *(len(lbl) + 2 for lbl in labels))
    header = "flow".ljust(8) + "".join(lbl.rjust(width) for lbl in labels)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for flow in flows:
        row = flow.ljust(8)
        for label in labels:
            value = series[label].get(flow)
            cell = f"{value:.3f}" if value is not None else "-"
            row += cell.rjust(width)
        lines.append(row)
    lines.append("-" * len(header))
    lines.append(f"(delays in {unit})")
    return "\n".join(lines)


def render_series(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    x_name: str = "x",
    unit: str = "ms",
) -> str:
    """An (x, y) table: rows are x values, columns are run labels.

    The textual form of Figs. 13-14 (Tl on the x-axis).  An empty
    ``series`` yields a stub table, as in :func:`render_flow_table`.
    """
    labels = list(series)
    if not labels:
        return _empty_table(title, unit)
    xs: list[float] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    xs.sort()

    width = max(12, *(len(lbl) + 2 for lbl in labels))
    header = x_name.ljust(10) + "".join(lbl.rjust(width) for lbl in labels)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for x in xs:
        row = f"{x:g}".ljust(10)
        for label in labels:
            value = next(
                (y for px, y in series[label] if px == x), None
            )
            cell = f"{value:.3f}" if value is not None else "-"
            row += cell.rjust(width)
        lines.append(row)
    lines.append("-" * len(header))
    lines.append(f"(values in {unit})")
    return "\n".join(lines)
