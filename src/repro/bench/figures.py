"""One data-generating function per figure of the paper's evaluation.

Operating points were calibrated so that the paper's *claims* are
exercised (loaded-but-feasible networks; see EXPERIMENTS.md):

- CAIRN experiments run at ``load=1.2`` (Figs. 9/11) where SP congests
  its bottlenecks while MP and OPT stay comfortable;
- NET1 experiments run at ``load=1.35`` (Figs. 10/12);
- the Tl sweeps (Figs. 13/14) run at slightly lower load with larger
  buffers (``queue_limit=750``) so backlog can integrate over a route
  period — the mechanism behind SP's Tl sensitivity;
- the dynamic-traffic experiment uses 3x on/off bursts at 0.7 mean load.

Absolute milliseconds are ours (our substrate is a simulator, not the
authors' testbed); the reproduced quantities are the *shapes*: who wins,
by roughly what factor, and the trends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy import available_policies
from repro.sim.control import QuasiStaticConfig, run
from repro.sim.runner import run_opt
from repro.sim.scenario import (
    Scenario,
    bursty_scenario,
    cairn_scenario,
    net1_scenario,
)
from repro.units import ms

#: Default run length for the stationary figures.
DURATION = 200.0
WARMUP = 60.0

CAIRN_LOAD = 1.2
NET1_LOAD = 1.35

#: AH damping used by MP runs (0.5 stabilizes the paper's heuristic; the
#: ABL1 ablation quantifies the difference).
MP_DAMPING = 0.5


@dataclass
class FigureResult:
    """Data series of one regenerated figure plus its claim check."""

    figure: str
    claim: str
    #: label -> flow -> delay(ms)   (flow figures)
    flow_series: dict[str, dict[str, float]] = field(default_factory=dict)
    #: label -> [(x, value_ms)]     (sweep figures)
    sweep_series: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict
    )
    #: computed shape metrics, e.g. {"mp_over_opt_mean": 1.02}
    metrics: dict[str, float] = field(default_factory=dict)


def _mp_config(**overrides) -> QuasiStaticConfig:
    base = dict(
        tl=10.0,
        ts=2.0,
        duration=DURATION,
        warmup=WARMUP,
        damping=MP_DAMPING,
    )
    base.update(overrides)
    return QuasiStaticConfig(**base)


def _sp_config(**overrides) -> QuasiStaticConfig:
    base = dict(
        tl=10.0, ts=2.0, duration=DURATION, warmup=WARMUP, successor_limit=1
    )
    base.update(overrides)
    return QuasiStaticConfig(**base)


def _ratio_stats(
    num: dict[str, float], den: dict[str, float]
) -> tuple[float, float, float]:
    ratios = [num[f] / den[f] for f in num if den.get(f)]
    return (
        min(ratios),
        max(ratios),
        sum(ratios) / len(ratios),
    )


# ----------------------------------------------------------------------
# Figs. 9 & 10 — OPT vs MP
# ----------------------------------------------------------------------
def _opt_vs_mp(scenario: Scenario, figure: str, claim: str) -> FigureResult:
    mp = run(scenario, _mp_config())
    opt, gallager = run_opt(scenario, max_iterations=2500)
    result = FigureResult(figure=figure, claim=claim)
    opt_delays = opt.mean_flow_delays_ms()
    result.flow_series["OPT"] = opt_delays
    result.flow_series["OPT+5%"] = {
        f: 1.05 * d for f, d in opt_delays.items()
    }
    result.flow_series[mp.label] = mp.mean_flow_delays_ms()
    lo, hi, mean = _ratio_stats(
        result.flow_series[mp.label], opt_delays
    )
    result.metrics = {
        "mp_over_opt_min": lo,
        "mp_over_opt_max": hi,
        "mp_over_opt_mean": mean,
        "opt_iterations": float(gallager.iterations),
        "opt_converged": float(gallager.converged),
    }
    return result


def fig09_cairn_opt_vs_mp() -> FigureResult:
    """Fig. 9: average per-flow delays of OPT and MP on CAIRN."""
    return _opt_vs_mp(
        cairn_scenario(load=CAIRN_LOAD),
        "Fig. 9 (CAIRN: OPT vs MP)",
        "MP delays are within a few percent of OPT "
        "(paper: inside the OPT+5% envelope)",
    )


def fig10_net1_opt_vs_mp() -> FigureResult:
    """Fig. 10: average per-flow delays of OPT and MP on NET1."""
    return _opt_vs_mp(
        net1_scenario(load=NET1_LOAD),
        "Fig. 10 (NET1: OPT vs MP)",
        "MP delays are within a small envelope of OPT (paper: ~8%)",
    )


# ----------------------------------------------------------------------
# Figs. 11 & 12 — MP vs SP
# ----------------------------------------------------------------------
def _mp_vs_sp(scenario: Scenario, figure: str, claim: str) -> FigureResult:
    mp_fast = run(scenario, _mp_config(ts=2.0))
    mp_slow = run(scenario, _mp_config(ts=10.0))
    sp = run(scenario, _sp_config())
    opt, _ = run_opt(scenario, max_iterations=2500)

    result = FigureResult(figure=figure, claim=claim)
    result.flow_series["OPT"] = opt.mean_flow_delays_ms()
    result.flow_series[mp_slow.label] = mp_slow.mean_flow_delays_ms()
    result.flow_series[mp_fast.label] = mp_fast.mean_flow_delays_ms()
    result.flow_series[sp.label] = sp.mean_flow_delays_ms()
    lo, hi, mean = _ratio_stats(
        result.flow_series[sp.label], result.flow_series[mp_fast.label]
    )
    result.metrics = {
        "sp_over_mp_min": lo,
        "sp_over_mp_max": hi,
        "sp_over_mp_mean": mean,
    }
    return result


def fig11_cairn_mp_vs_sp() -> FigureResult:
    """Fig. 11: MP (two Ts settings) vs SP on CAIRN."""
    return _mp_vs_sp(
        cairn_scenario(load=CAIRN_LOAD),
        "Fig. 11 (CAIRN: MP vs SP)",
        "SP delays reach two to four times MP's for some flows",
    )


def fig12_net1_mp_vs_sp() -> FigureResult:
    """Fig. 12: MP vs SP on NET1 (higher connectivity => bigger gap)."""
    return _mp_vs_sp(
        net1_scenario(load=NET1_LOAD),
        "Fig. 12 (NET1: MP vs SP)",
        "SP delays reach five to six times MP's (higher connectivity)",
    )


# ----------------------------------------------------------------------
# Figs. 13 & 14 — effect of the tuning parameter Tl
# ----------------------------------------------------------------------
def _tl_sweep(
    scenario: Scenario,
    figure: str,
    claim: str,
    tl_values: tuple[float, ...] = (10.0, 20.0, 40.0),
    duration: float = 280.0,
) -> FigureResult:
    result = FigureResult(figure=figure, claim=claim)
    mp_points, sp_points = [], []
    for tl in tl_values:
        common = dict(
            tl=tl, ts=2.0, duration=duration, warmup=60.0, queue_limit=750.0
        )
        mp = run(scenario, _mp_config(**common))
        sp = run(scenario, _sp_config(**common))
        mp_points.append((tl, ms(mp.mean_average_delay())))
        sp_points.append((tl, ms(sp.mean_average_delay())))
    result.sweep_series["MP"] = mp_points
    result.sweep_series["SP"] = sp_points
    mp_vals = [y for _, y in mp_points]
    sp_vals = [y for _, y in sp_points]
    result.metrics = {
        "mp_relative_change": (max(mp_vals) - min(mp_vals)) / min(mp_vals),
        "sp_relative_change": (max(sp_vals) - min(sp_vals)) / min(sp_vals),
        "sp_last_over_first": sp_vals[-1] / sp_vals[0],
    }
    return result


def fig13_cairn_tl_sweep() -> FigureResult:
    """Fig. 13: increasing Tl on CAIRN (Ts and traffic fixed)."""
    return _tl_sweep(
        cairn_scenario(load=1.25),
        "Fig. 13 (CAIRN: effect of Tl)",
        "SP delays more than double as Tl grows; MP barely changes",
    )


def fig14_net1_tl_sweep() -> FigureResult:
    """Fig. 14: increasing Tl on NET1.

    Run under mildly bursty traffic: with perfectly stationary fluid
    demand, a pinned single path is insensitive to staleness by
    construction; the paper's SP sensitivity needs traffic that moves
    between route updates (see EXPERIMENTS.md).
    """
    scenario = bursty_scenario(
        net1_scenario(load=0.7), burstiness=3.0, mean_on=15.0, seed=3,
        horizon=600.0,
    )
    return _tl_sweep(
        scenario,
        "Fig. 14 (NET1: effect of Tl, bursty demand)",
        "SP delays change significantly with Tl; MP's change is negligible",
        duration=400.0,
    )


# ----------------------------------------------------------------------
# Dynamic traffic (the paper's dynamic-environment comparison)
# ----------------------------------------------------------------------
def dyn_bursty(network: str = "net1") -> FigureResult:
    """MP vs SP under on/off bursty traffic."""
    if network == "net1":
        scenario = bursty_scenario(
            net1_scenario(load=0.7), burstiness=3.0, mean_on=8.0, seed=3
        )
    elif network == "cairn":
        # CAIRN saturates under 3x bursts even for MP; 2x bursts at 0.8
        # mean load keep MP feasible while single paths overload.
        scenario = bursty_scenario(
            cairn_scenario(load=0.8), burstiness=2.0, mean_on=10.0, seed=3
        )
    else:
        raise ValueError(f"unknown network {network!r}")
    cfg = dict(tl=10.0, ts=2.0, duration=300.0, warmup=60.0)
    mp = run(scenario, _mp_config(**cfg))
    sp = run(scenario, _sp_config(**cfg))
    result = FigureResult(
        figure=f"DYN ({network}: bursty traffic)",
        claim="MP renders far smaller delays than SP in dynamic "
        "environments (abstract / Section 5)",
    )
    result.flow_series[mp.label] = mp.mean_flow_delays_ms()
    result.flow_series[sp.label] = sp.mean_flow_delays_ms()
    result.metrics = {
        "mp_avg_ms": ms(mp.mean_average_delay()),
        "sp_avg_ms": ms(sp.mean_average_delay()),
        "sp_over_mp_avg": sp.mean_average_delay() / mp.mean_average_delay(),
    }
    return result


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def abl_allocation() -> FigureResult:
    """ABL1: allocation variants — AH cadence and damping.

    Compares MP with short-term adjustment (Ts << Tl), MP with
    allocation only at route updates (Ts = Tl, the paper's
    MP-TL-10-TS-10), and the undamped paper heuristic.
    """
    scenario = net1_scenario(load=NET1_LOAD)
    variants = {
        "AH@Ts2+damp.5": _mp_config(ts=2.0, damping=0.5),
        "AH@Ts2+damp1": _mp_config(ts=2.0, damping=1.0),
        "AH@Ts10(=Tl)": _mp_config(ts=10.0, damping=0.5),
    }
    result = FigureResult(
        figure="ABL1 (allocation cadence and damping)",
        claim="short-term AH updates improve on allocation only at Tl; "
        "damping stabilizes the min-ratio step",
    )
    for label, config in variants.items():
        outcome = run(scenario, config)
        result.flow_series[label] = outcome.mean_flow_delays_ms()
        result.metrics[f"{label}_avg_ms"] = ms(outcome.mean_average_delay())
    return result


def abl_successors() -> FigureResult:
    """ABL2: number of successors (1 = SP ... unbounded = MP)."""
    scenario = net1_scenario(load=NET1_LOAD)
    result = FigureResult(
        figure="ABL2 (successor-set size)",
        claim="delay falls as more loop-free successors become usable",
    )
    for limit, label in ((1, "limit1(SP)"), (2, "limit2"), (None, "all(MP)")):
        config = _mp_config(successor_limit=limit)
        outcome = run(scenario, config)
        result.flow_series[label] = outcome.mean_flow_delays_ms()
        result.metrics[f"{label}_avg_ms"] = ms(outcome.mean_average_delay())
    return result


# ----------------------------------------------------------------------
# The policy zoo — every registered algorithm under one operating point
# ----------------------------------------------------------------------
#: Constructor knobs for policies whose defaults need pinning in the
#: comparison (kept explicit so the table is self-describing).
ZOO_POLICY_PARAMS: dict[str, dict] = {
    "ecmp-k": {"k": 3},
}

#: The MP family keeps the damping the paper figures use.
_DAMPED_POLICIES = ("mp", "mp-oracle")


def _zoo_scenario(network: str) -> Scenario:
    if network == "cairn":
        return cairn_scenario(load=CAIRN_LOAD)
    if network == "net1":
        return net1_scenario(load=NET1_LOAD)
    raise ValueError(f"unknown network {network!r}")


def _zoo_config(policy: str, **overrides) -> QuasiStaticConfig:
    base = dict(
        tl=10.0,
        ts=2.0,
        duration=DURATION,
        warmup=WARMUP,
        policy=policy,
        policy_params=dict(ZOO_POLICY_PARAMS.get(policy, {})),
        damping=MP_DAMPING if policy in _DAMPED_POLICIES else 1.0,
    )
    base.update(overrides)
    return QuasiStaticConfig(**base)


def policy_zoo(
    network: str = "cairn",
    *,
    policies: tuple[str, ...] | None = None,
    duration: float = DURATION,
    warmup: float = WARMUP,
) -> FigureResult:
    """Every registered routing policy on one evaluation topology.

    The fig09–fig14 harness compares the paper's protagonists; this is
    the same operating point (Figs. 9/11 for CAIRN, 10/12 for NET1)
    opened to the whole registry — MPDA, its single-path and ECMP
    ablations, Gallager's optimum, and the non-paper rivals (``ecmp-k``,
    ``backpressure-lr``).  Rows are keyed by *policy name* (labels
    collide: ``mp`` and ``mp-oracle`` share the paper's MP plot key).
    """
    scenario = _zoo_scenario(network)
    names = (
        tuple(policies)
        if policies is not None
        else tuple(available_policies())
    )
    result = FigureResult(
        figure=f"ZOO ({network}: all registered policies)",
        claim=(
            "MPDA tracks OPT; single-path and equal-cost baselines "
            "congest; DAG-frozen backpressure sits between"
        ),
    )
    for name in names:
        outcome = run(
            scenario,
            _zoo_config(name, duration=duration, warmup=warmup),
        )
        result.flow_series[name] = outcome.mean_flow_delays_ms()
        result.metrics[f"{name}_avg_ms"] = ms(outcome.mean_average_delay())
        result.metrics[f"{name}_max_util"] = outcome.peak_utilization()
    return result


def policy_zoo_cell(
    policy: str,
    network: str = "cairn",
    *,
    duration: float = DURATION,
    warmup: float = WARMUP,
) -> dict:
    """One (policy, network) cell of :func:`policy_zoo`, as plain data.

    The fleet's zoo campaign runs the same operating point one pair per
    worker; returning a flat JSON-serializable dict (instead of a
    :class:`FigureResult`) lets shard results merge without pickling
    figure objects.
    """
    scenario = _zoo_scenario(network)
    outcome = run(
        scenario, _zoo_config(policy, duration=duration, warmup=warmup)
    )
    return {
        "policy": policy,
        "network": network,
        "avg_ms": ms(outcome.mean_average_delay()),
        "max_util": outcome.peak_utilization(),
        "flow_delays_ms": outcome.mean_flow_delays_ms(),
    }


def render_policy_delay_table(
    results: dict[str, FigureResult]
) -> str:
    """The per-policy delay table (markdown) for EXPERIMENTS.md.

    ``results`` maps network name -> :func:`policy_zoo` result.  One row
    per policy, one average-delay column per network, plus the policy's
    loop-freedom contract.
    """
    networks = list(results)
    registry = available_policies()
    names = sorted(
        {
            name
            for res in results.values()
            for name in res.flow_series
        }
    )
    header = (
        "| policy | loop-free | "
        + " | ".join(f"{net} avg (ms)" for net in networks)
        + " | "
        + " | ".join(f"{net} max util" for net in networks)
        + " |"
    )
    rule = "|---" * (1 + 1 + 2 * len(networks)) + "|"
    lines = [header, rule]
    for name in names:
        cls = registry.get(name)
        loop_free = "yes" if (cls is not None and cls.loop_free) else "no"
        delays = [
            f"{results[net].metrics.get(f'{name}_avg_ms', float('nan')):.2f}"
            for net in networks
        ]
        utils = [
            f"{results[net].metrics.get(f'{name}_max_util', float('nan')):.2f}"
            for net in networks
        ]
        lines.append(
            f"| `{name}` | {loop_free} | "
            + " | ".join(delays)
            + " | "
            + " | ".join(utils)
            + " |"
        )
    return "\n".join(lines)
