"""Convergence-time experiment: single-link failure under live MPDA.

The paper proves MPDA converges after any finite sequence of topology
and cost changes (Theorem 2) and stays loop-free *during* convergence
(Theorem 3), but reports no convergence-time numbers.  This experiment
produces them: for each evaluation topology, the real protocol is cold
started, then one duplex link is failed and — after the network
requiesces — restored, with every delivery step audited online for LFI
safety and successor-graph acyclicity.

Convergence is measured in messages delivered, the protocol's own
clock: with a fixed interleaving seed the counts are exactly
reproducible, unlike wall seconds (which are still recorded in the
trace for orientation).  The failed link is chosen deterministically —
the first duplex link, in sorted order, whose removal keeps the
topology connected — so a failure never partitions the network and
every destination keeps a finite distance.

Run it via ``python -m repro converge``; post-process the trace with
``python -m repro report``.

:func:`packet_failover_experiment` is the packet-granularity companion:
the same fail/restore workload, but through the full two-timescale
system (:mod:`repro.sim.control`) with every packet simulated — the
outage drops the packets queued on the dying link, MPDA reconverges,
and traffic reroutes over the surviving successor sets while the
online auditor keeps checking loop freedom.  Run it via
``python -m repro packet-converge``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.core.router import MPRouting
from repro.fluid.evaluator import link_flows
from repro.fluid.flows import TrafficMatrix
from repro.graph.topologies import cairn, net1
from repro.graph.topology import NodeId, Topology
from repro.sim.control import PacketRunConfig, run
from repro.sim.scenario import cairn_scenario, net1_scenario, with_failures
from repro.units import ms


def pick_failure_link(topo: Topology) -> tuple[NodeId, NodeId]:
    """The first duplex link (sorted) whose loss keeps ``topo`` connected."""
    duplex = sorted(
        {tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()},
        key=repr,
    )
    for a, b in duplex:
        if _connected_without(topo, (a, b)):
            return a, b
    raise ValueError(f"every link of {topo.name!r} is a bridge")


def _connected_without(
    topo: Topology, down: tuple[NodeId, NodeId]
) -> bool:
    """Is the topology connected with the duplex link ``down`` removed?"""
    nodes = list(topo.nodes)
    start = nodes[0]
    seen = {start}
    frontier = deque([start])
    blocked = {down, (down[1], down[0])}
    while frontier:
        node = frontier.popleft()
        for nbr in topo.neighbors(node):
            if (node, nbr) in blocked or nbr in seen:
                continue
            seen.add(nbr)
            frontier.append(nbr)
    return len(seen) == len(nodes)


@dataclass
class FailoverResult:
    """Message counts of one audited cold-start / fail / restore run."""

    topology: str
    nodes: int
    links: int  # directed links
    failed_link: tuple[NodeId, NodeId]
    cold_messages: int = 0
    fail_messages: int = 0
    restore_messages: int = 0
    audit: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "topology": self.topology,
            "nodes": self.nodes,
            "links": self.links,
            "failed_link": list(self.failed_link),
            "cold_messages": self.cold_messages,
            "fail_messages": self.fail_messages,
            "restore_messages": self.restore_messages,
            "audit": dict(self.audit),
        }


def failover_experiment(
    topo: Topology, name: str, *, seed: int = 0
) -> FailoverResult:
    """Cold start, fail one safe link, requiesce, restore, requiesce.

    Runs under whatever observation is current: with tracing + audit
    enabled (``repro converge`` does both) the trace carries three
    disturbance→quiescence windows and the auditor checks LFI safety
    after every delivery.  Convergence to the true shortest paths is
    verified against the Dijkstra oracle after each window.
    """
    costs = topo.idle_marginal_costs()
    driver = ProtocolDriver(topo, MPDARouter, seed=seed)
    a, b = pick_failure_link(topo)
    result = FailoverResult(
        topology=name,
        nodes=topo.num_nodes,
        links=topo.num_links,
        failed_link=(a, b),
    )

    driver.start(costs)
    result.cold_messages = driver.run()
    driver.verify_converged()

    driver.fail_link(a, b)
    result.fail_messages = driver.run()
    driver.verify_converged()

    driver.restore_link(a, b, costs[(a, b)], costs[(b, a)])
    result.restore_messages = driver.run()
    driver.verify_converged()

    ob = obs.current()
    if ob is not None and ob.auditor is not None:
        result.audit = ob.auditor.summary()
    return result


def converge_experiment(
    *, seed: int = 0, topologies: tuple[str, ...] = ("cairn", "net1")
) -> list[FailoverResult]:
    """The paper's two evaluation topologies through the failover workload."""
    factories = {"cairn": (cairn, "CAIRN"), "net1": (net1, "NET1")}
    results = []
    for key in topologies:
        factory, label = factories[key]
        results.append(failover_experiment(factory(), label, seed=seed))
    return results


def pick_loaded_failure_link(
    topo: Topology, traffic: TrafficMatrix
) -> tuple[NodeId, NodeId]:
    """The busiest safe duplex link: carries the most boot-route flow
    among the links whose loss keeps ``topo`` connected.

    Failing an idle link proves nothing about rerouting; this picks one
    the workload actually uses (deterministically — boot routes come
    from idle marginal costs, ties break in sorted order).
    """
    routing = MPRouting(topo, traffic.destinations())
    routing.update_routes(topo.idle_marginal_costs())
    flows = link_flows(routing.phi(), traffic)
    duplex = sorted(
        {tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()},
        key=repr,
    )
    best: tuple[NodeId, NodeId] | None = None
    best_flow = -1.0
    for a, b in duplex:
        if not _connected_without(topo, (a, b)):
            continue
        carried = flows.get((a, b), 0.0) + flows.get((b, a), 0.0)
        if carried > best_flow:
            best, best_flow = (a, b), carried
    if best is None:
        raise ValueError(f"every link of {topo.name!r} is a bridge")
    return best


@dataclass
class PacketFailoverResult:
    """Per-phase delivery statistics of one packet-granularity outage."""

    topology: str
    label: str
    failed_link: tuple[NodeId, NodeId]
    outage: tuple[float, float]
    #: Packets delivered in the before / during / after phase.
    delivered: dict[str, int] = field(default_factory=dict)
    #: Packets dropped (queue overflow, link failure, no route) per phase.
    dropped: dict[str, int] = field(default_factory=dict)
    #: Delivered-weighted mean end-to-end delay per phase, milliseconds.
    mean_delay_ms: dict[str, float] = field(default_factory=dict)
    no_route_drops: int = 0
    audit: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "topology": self.topology,
            "label": self.label,
            "failed_link": list(self.failed_link),
            "outage": list(self.outage),
            "delivered": dict(self.delivered),
            "dropped": dict(self.dropped),
            "mean_delay_ms": {
                k: round(v, 4) for k, v in self.mean_delay_ms.items()
            },
            "no_route_drops": self.no_route_drops,
            "audit": dict(self.audit),
        }


PHASES = ("before", "during", "after")


def packet_failover_experiment(
    topo_key: str,
    *,
    load: float = 0.9,
    seed: int = 0,
    tl: float = 4.0,
    ts: float = 2.0,
    duration: float = 36.0,
    outage: tuple[float, float] = (12.0, 24.0),
) -> PacketFailoverResult:
    """Fail the busiest safe link mid-run, at packet granularity.

    Runs under whatever observation is current (``repro
    packet-converge`` adds tracing + the online auditor, in which case
    the run upgrades to the live MPDA control plane and the outage
    flows through the driver's link_down/link_up path).  The returned
    per-phase delivery counts quantify rerouting: packets keep arriving
    during the outage because the flows that used the dead link moved
    to the surviving loop-free successors.
    """
    factories = {
        "cairn": (cairn_scenario, "CAIRN"),
        "net1": (net1_scenario, "NET1"),
    }
    factory, label = factories[topo_key]
    base = factory(load=load)
    failed = pick_loaded_failure_link(base.topo, base.traffic)
    scenario = with_failures(base, {failed: [outage]})
    config = PacketRunConfig(
        tl=tl, ts=ts, duration=duration, damping=0.5, seed=seed
    )
    run_result = run(scenario, config)

    result = PacketFailoverResult(
        topology=label,
        label=run_result.label,
        failed_link=failed,
        outage=outage,
    )
    start, end = outage
    delay_sums = dict.fromkeys(PHASES, 0.0)
    for phase in PHASES:
        result.delivered[phase] = 0
        result.dropped[phase] = 0
    for record in run_result.records:
        # Each record covers [time, time+ts); classify by window start.
        if record.time < start:
            phase = "before"
        elif record.time < end:
            phase = "during"
        else:
            phase = "after"
        delivered = int((record.metrics or {}).get("delivered", 0))
        result.delivered[phase] += delivered
        result.dropped[phase] += int((record.metrics or {}).get("dropped", 0))
        delay_sums[phase] += record.average_delay * delivered
    for phase in PHASES:
        count = result.delivered[phase]
        result.mean_delay_ms[phase] = (
            ms(delay_sums[phase] / count) if count else 0.0
        )

    ob = obs.current()
    if ob is not None:
        if ob.auditor is not None:
            result.audit = ob.auditor.summary()
        result.no_route_drops = int(
            ob.metrics.value("netsim.no_route_drops") or 0
        )
    return result


def packet_converge_experiment(
    *,
    seed: int = 0,
    load: float = 0.9,
    topologies: tuple[str, ...] = ("cairn", "net1"),
) -> list[PacketFailoverResult]:
    """The packet-plane failover workload on the evaluation topologies."""
    return [
        packet_failover_experiment(key, load=load, seed=seed)
        for key in topologies
    ]


def render_packet_failover_table(
    results: list[PacketFailoverResult],
) -> str:
    """Plain-text table of the per-phase packet delivery statistics."""
    header = (
        "topology".ljust(10)
        + "failed link".rjust(14)
        + "phase".rjust(9)
        + "delivered".rjust(11)
        + "dropped".rjust(9)
        + "delay(ms)".rjust(11)
    )
    lines = [
        "packet-granularity failover "
        "(busiest safe link down mid-run, audited)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for result in results:
        a, b = result.failed_link
        for phase in PHASES:
            lines.append(
                (result.topology if phase == "before" else "").ljust(10)
                + (f"{a}-{b}" if phase == "before" else "").rjust(14)
                + phase.rjust(9)
                + f"{result.delivered[phase]}".rjust(11)
                + f"{result.dropped[phase]}".rjust(9)
                + f"{result.mean_delay_ms[phase]:.3f}".rjust(11)
            )
        verdict = result.audit.get("verdict", "n/a")
        lines.append(
            f"           audit: {verdict}, "
            f"no-route drops: {result.no_route_drops}"
        )
    lines.append("-" * len(header))
    lines.append(
        "(packets delivered while the link is down prove rerouting: "
        "everything offered to a dead link is dropped)"
    )
    return "\n".join(lines)


def render_failover_table(results: list[FailoverResult]) -> str:
    """Plain-text table of the convergence message counts."""
    header = (
        "topology".ljust(10)
        + "nodes".rjust(6)
        + "links".rjust(6)
        + "failed link".rjust(16)
        + "cold".rjust(8)
        + "fail".rjust(8)
        + "restore".rjust(9)
        + "audit".rjust(9)
    )
    lines = [
        "convergence (messages to quiescence per event, online LFI audit)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for result in results:
        a, b = result.failed_link
        verdict = result.audit.get("verdict", "n/a")
        lines.append(
            result.topology.ljust(10)
            + f"{result.nodes}".rjust(6)
            + f"{result.links}".rjust(6)
            + f"{a}-{b}".rjust(16)
            + f"{result.cold_messages}".rjust(8)
            + f"{result.fail_messages}".rjust(8)
            + f"{result.restore_messages}".rjust(9)
            + verdict.rjust(9)
        )
    lines.append("-" * len(header))
    lines.append(
        "(counts are LSU+ACK deliveries with a fixed interleaving seed; "
        "audit = online LFI/loop check verdict)"
    )
    return "\n".join(lines)
