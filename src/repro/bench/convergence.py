"""Convergence-time experiment: single-link failure under live MPDA.

The paper proves MPDA converges after any finite sequence of topology
and cost changes (Theorem 2) and stays loop-free *during* convergence
(Theorem 3), but reports no convergence-time numbers.  This experiment
produces them: for each evaluation topology, the real protocol is cold
started, then one duplex link is failed and — after the network
requiesces — restored, with every delivery step audited online for LFI
safety and successor-graph acyclicity.

Convergence is measured in messages delivered, the protocol's own
clock: with a fixed interleaving seed the counts are exactly
reproducible, unlike wall seconds (which are still recorded in the
trace for orientation).  The failed link is chosen deterministically —
the first duplex link, in sorted order, whose removal keeps the
topology connected — so a failure never partitions the network and
every destination keeps a finite distance.

Run it via ``python -m repro converge``; post-process the trace with
``python -m repro report``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.graph.topologies import cairn, net1
from repro.graph.topology import NodeId, Topology


def pick_failure_link(topo: Topology) -> tuple[NodeId, NodeId]:
    """The first duplex link (sorted) whose loss keeps ``topo`` connected."""
    duplex = sorted(
        {tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()},
        key=repr,
    )
    for a, b in duplex:
        if _connected_without(topo, (a, b)):
            return a, b
    raise ValueError(f"every link of {topo.name!r} is a bridge")


def _connected_without(
    topo: Topology, down: tuple[NodeId, NodeId]
) -> bool:
    """Is the topology connected with the duplex link ``down`` removed?"""
    nodes = list(topo.nodes)
    start = nodes[0]
    seen = {start}
    frontier = deque([start])
    blocked = {down, (down[1], down[0])}
    while frontier:
        node = frontier.popleft()
        for nbr in topo.neighbors(node):
            if (node, nbr) in blocked or nbr in seen:
                continue
            seen.add(nbr)
            frontier.append(nbr)
    return len(seen) == len(nodes)


@dataclass
class FailoverResult:
    """Message counts of one audited cold-start / fail / restore run."""

    topology: str
    nodes: int
    links: int  # directed links
    failed_link: tuple[NodeId, NodeId]
    cold_messages: int = 0
    fail_messages: int = 0
    restore_messages: int = 0
    audit: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "topology": self.topology,
            "nodes": self.nodes,
            "links": self.links,
            "failed_link": list(self.failed_link),
            "cold_messages": self.cold_messages,
            "fail_messages": self.fail_messages,
            "restore_messages": self.restore_messages,
            "audit": dict(self.audit),
        }


def failover_experiment(
    topo: Topology, name: str, *, seed: int = 0
) -> FailoverResult:
    """Cold start, fail one safe link, requiesce, restore, requiesce.

    Runs under whatever observation is current: with tracing + audit
    enabled (``repro converge`` does both) the trace carries three
    disturbance→quiescence windows and the auditor checks LFI safety
    after every delivery.  Convergence to the true shortest paths is
    verified against the Dijkstra oracle after each window.
    """
    costs = topo.idle_marginal_costs()
    driver = ProtocolDriver(topo, MPDARouter, seed=seed)
    a, b = pick_failure_link(topo)
    result = FailoverResult(
        topology=name,
        nodes=topo.num_nodes,
        links=topo.num_links,
        failed_link=(a, b),
    )

    driver.start(costs)
    result.cold_messages = driver.run()
    driver.verify_converged()

    driver.fail_link(a, b)
    result.fail_messages = driver.run()
    driver.verify_converged()

    driver.restore_link(a, b, costs[(a, b)], costs[(b, a)])
    result.restore_messages = driver.run()
    driver.verify_converged()

    ob = obs.current()
    if ob is not None and ob.auditor is not None:
        result.audit = ob.auditor.summary()
    return result


def converge_experiment(
    *, seed: int = 0, topologies: tuple[str, ...] = ("cairn", "net1")
) -> list[FailoverResult]:
    """The paper's two evaluation topologies through the failover workload."""
    factories = {"cairn": (cairn, "CAIRN"), "net1": (net1, "NET1")}
    results = []
    for key in topologies:
        factory, label = factories[key]
        results.append(failover_experiment(factory(), label, seed=seed))
    return results


def render_failover_table(results: list[FailoverResult]) -> str:
    """Plain-text table of the convergence message counts."""
    header = (
        "topology".ljust(10)
        + "nodes".rjust(6)
        + "links".rjust(6)
        + "failed link".rjust(16)
        + "cold".rjust(8)
        + "fail".rjust(8)
        + "restore".rjust(9)
        + "audit".rjust(9)
    )
    lines = [
        "convergence (messages to quiescence per event, online LFI audit)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for result in results:
        a, b = result.failed_link
        verdict = result.audit.get("verdict", "n/a")
        lines.append(
            result.topology.ljust(10)
            + f"{result.nodes}".rjust(6)
            + f"{result.links}".rjust(6)
            + f"{a}-{b}".rjust(16)
            + f"{result.cold_messages}".rjust(8)
            + f"{result.fail_messages}".rjust(8)
            + f"{result.restore_messages}".rjust(9)
            + verdict.rjust(9)
        )
    lines.append("-" * len(header))
    lines.append(
        "(counts are LSU+ACK deliveries with a fixed interleaving seed; "
        "audit = online LFI/loop check verdict)"
    )
    return "\n".join(lines)
