"""Performance baseline artifact: ``BENCH_report.json``.

Collects, in one JSON document, the numbers a future change must not
regress silently:

- the protocol-overhead experiment (MPDA vs. flooding message counts)
  with its wall-clock runtime;
- the audited single-link-failure convergence experiment — message
  counts per convergence window, the audit verdict, and the runtime
  both with and without the online auditor, which prices the
  ``sample_every=1`` worst case of the instrument itself.

Message counts are deterministic (seeded interleaving); the ``*_s``
runtime fields are wall-clock measurements of the machine that produced
the artifact and serve as an order-of-magnitude reference, not an exact
contract.  Regenerate with::

    PYTHONPATH=src python -m repro.bench.baseline --out BENCH_report.json
"""

from __future__ import annotations

import argparse
import json
from time import perf_counter
from typing import Any

from repro import obs
from repro.bench.convergence import converge_experiment
from repro.bench.overhead import overhead_experiment

#: /2: per-run entries carry ``schema_version`` so additive gate
#: extensions can be dispatched without re-reading the whole document.
BASELINE_SCHEMA = "repro.bench/2"

#: Version stamped into each ``converge.runs`` entry.
BASELINE_ENTRY_VERSION = 2


def collect_baseline(
    *,
    epochs: int = 5,
    seed: int = 0,
    topologies: tuple[str, ...] = ("cairn", "net1"),
) -> dict[str, Any]:
    """Run both benchmark workloads and assemble the baseline document."""
    started = perf_counter()
    overhead_reports = overhead_experiment(epochs=epochs, seed=seed)
    overhead_s = perf_counter() - started

    started = perf_counter()
    plain_results = converge_experiment(seed=seed, topologies=topologies)
    plain_s = perf_counter() - started

    started = perf_counter()
    with obs.observe(audit=True, audit_sample=1):
        audited_results = converge_experiment(
            seed=seed, topologies=topologies
        )
    audited_s = perf_counter() - started

    return {
        "schema": BASELINE_SCHEMA,
        "generated_by": "python -m repro.bench.baseline",
        "overhead": {
            "runtime_s": round(overhead_s, 3),
            "epochs": epochs,
            "seed": seed,
            "topologies": [
                {
                    "topology": report.topology,
                    "nodes": report.nodes,
                    "links": report.links,
                    "mpda_cold_start": report.mpda_cold_start,
                    "mpda_update_mean": round(report.mpda_update_mean, 1),
                    "flooding_cold_start": report.flooding_cold_start,
                    "flooding_per_epoch": report.flooding_per_epoch,
                    "update_ratio": round(report.update_ratio, 2),
                }
                for report in overhead_reports
            ],
        },
        "converge": {
            "seed": seed,
            "runtime_s": round(plain_s, 3),
            "audited_runtime_s": round(audited_s, 3),
            # How much the every-event auditor slows the run down — the
            # worst-case price of the instrument (sample_every=1).
            "audit_slowdown": round(audited_s / plain_s, 2)
            if plain_s > 0
            else None,
            "runs": [
                {
                    "schema_version": BASELINE_ENTRY_VERSION,
                    **result.as_dict(),
                }
                for result in audited_results
            ],
            "plain_runs_match": [
                plain.as_dict()["cold_messages"]
                == audited.as_dict()["cold_messages"]
                for plain, audited in zip(plain_results, audited_results)
            ],
        },
    }


def write_baseline(path: str, baseline: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.baseline",
        description="regenerate the BENCH_report.json performance baseline",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_report.json",
        help="output path (default BENCH_report.json)",
    )
    parser.add_argument("--epochs", type=int, default=5, metavar="N")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    args = parser.parse_args(argv)
    baseline = collect_baseline(epochs=args.epochs, seed=args.seed)
    write_baseline(args.out, baseline)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
