"""Scale-trajectory benchmark: ``BENCH_scale.json``.

The paper evaluates on CAIRN (27 nodes) and NET1 (10 nodes); the
roadmap's open question is how far the implementation scales beyond
that.  This benchmark measures the trajectory: the same
cold-start → single-failure → restore workload, driven through the
two-timescale controller on ISP-style topologies of growing size
(CAIRN itself at n=27, then seeded Waxman graphs at 50/100/300/1000
nodes), each run profiled for wall-clock, CPU, peak memory, protocol
message counts and per-phase self time.

Two kinds of numbers land in the artifact:

- **deterministic counts** — protocol messages delivered, LSU totals,
  phase call counts.  Fixed seed + fixed interleaving makes these
  exactly reproducible, so :func:`compare_scale` gates on them exactly;
- **resource readings** — wall/CPU seconds and peak RSS.  Machine-
  dependent, so the gate only rejects order-of-magnitude drift
  (configurable factor tolerances).

``python -m repro scale-bench`` regenerates the artifact;
``python -m repro bench-check`` reruns the workload and diffs it
against the committed baseline (nonzero exit on regression — the CI
perf gate).  Run sizes ascend so the peak-RSS reading of a small run is
not polluted by a bigger earlier one (``ru_maxrss`` is a process-wide
high-water mark).
"""

from __future__ import annotations

import json
import random
from typing import Any

from repro import obs
from repro.bench.convergence import pick_failure_link
from repro.fluid.flows import uniform_random_rates
from repro.graph.generators import waxman
from repro.graph.topologies import cairn
from repro.graph.topology import Topology
from repro.obs.profile import phase_profile, render_profile
from repro.sim.control import QuasiStaticConfig, run
from repro.sim.scenario import Scenario, cairn_scenario, with_failures
from repro.units import mbps

#: /2: entries carry ``schema_version`` plus causal wave statistics
#: (``waves`` / ``max_wave_depth`` / ``mean_wave_depth``) — the
#: wave-depth-vs-n curve testing the paper's bounded-wave claim.
SCALE_SCHEMA = "repro.bench.scale/2"

#: Version stamped into each entry; consumers can dispatch on it even
#: when the entry travels without its enclosing document.
SCALE_ENTRY_VERSION = 2

#: The benchmark trajectory: CAIRN, then Waxman ISP graphs.
SCALE_SIZES = (27, 50, 100, 300, 1000)

#: Workload shape: one Tl window of Ts epochs with an outage inside.
#: Epochs land at t=0/2/4/6 — cold start at boot, failure applied at
#: the t=2 epoch, restore at t=6, one long-timescale route update at
#: the end.  That is one cold-start plus one full failure convergence
#: per size, the protocol's expensive events, without paying for long
#: steady-state stretches that measure nothing new.
WORKLOAD = {
    "tl": 8.0,
    "ts": 2.0,
    "duration": 8.0,
    "outage": (2.0, 6.0),
    "flows": 12,
    "rate_low_mbps": 1.0,
    "rate_high_mbps": 3.0,
}


def scale_topology(n: int, *, seed: int = 0) -> tuple[Topology, str]:
    """The benchmark topology for ``n`` nodes and its generator tag."""
    if n == 27:
        return cairn(), "cairn"
    return waxman(n, seed=seed), "waxman"


def scale_scenario(n: int, *, seed: int = 0) -> tuple[Scenario, str]:
    """The failure scenario for one trajectory point.

    CAIRN keeps the paper's own flow set; generated graphs get
    ``WORKLOAD["flows"]`` random distinct source/destination pairs with
    rates in the paper's 1-3 Mb/s band.  The failed link is the first
    (sorted) whose loss keeps the graph connected, with the outage
    window from :data:`WORKLOAD`.
    """
    if n == 27:
        base = cairn_scenario()
        generator = "cairn"
    else:
        topo, generator = scale_topology(n, seed=seed)
        rng = random.Random(seed)
        nodes = list(topo.nodes)
        pairs: set[tuple[Any, Any]] = set()
        while len(pairs) < min(WORKLOAD["flows"], n * (n - 1)):
            src, dst = rng.sample(nodes, 2)
            pairs.add((src, dst))
        traffic = uniform_random_rates(
            sorted(pairs, key=repr),
            mbps(WORKLOAD["rate_low_mbps"]),
            mbps(WORKLOAD["rate_high_mbps"]),
            seed=seed,
        )
        base = Scenario(f"scale-{topo.name}", topo, traffic)
    failed = pick_failure_link(base.topo)
    outage = tuple(WORKLOAD["outage"])
    return with_failures(base, {failed: [outage]}), generator


def scale_point(
    n: int,
    *,
    seed: int = 0,
    profile_memory: str = "rss",
    top: int | None = 12,
) -> dict[str, Any]:
    """Run and profile one trajectory point; returns its JSON entry.

    Opens its own profiling observation so phase timers, metrics and
    the resource profiler all start from zero for this size.
    """
    scenario, generator = scale_scenario(n, seed=seed)
    config = QuasiStaticConfig(
        tl=WORKLOAD["tl"],
        ts=WORKLOAD["ts"],
        duration=WORKLOAD["duration"],
        warmup=0.0,
        policy="mp",
        damping=0.5,
        seed=seed,
    )
    with obs.observe(
        profile=True, profile_memory=profile_memory, causal=True
    ) as ob:
        result = run(scenario, config)
        snapshot = ob.profiler.snapshot()
        phases = phase_profile(ob)
        report = render_profile(ob, top=top)
        gauges = ob.metrics.snapshot()["gauges"]
        waves = list(ob.causal.waves)

    def gauge(name: str) -> float | None:
        series = gauges.get(name)
        if not series:
            return None
        return series[""]["value"]

    stats = result.protocol_stats
    depths = [wave["depth"] for wave in waves]
    return {
        "schema_version": SCALE_ENTRY_VERSION,
        "name": scenario.topo.name,
        "generator": generator,
        "n": n,
        "nodes": scenario.topo.num_nodes,
        "links": scenario.topo.num_links,
        "seed": seed,
        "messages": int(stats.get("delivered", 0)),
        "lsu_sent": int(stats.get("lsu_sent", 0)),
        "mtu_runs": int(stats.get("mtu_runs", 0)),
        "wall_s": round(snapshot["wall_s"], 4),
        "cpu_s": round(snapshot["cpu_s"], 4),
        "memory_mode": snapshot["memory_mode"],
        "rss_max_kb": snapshot["rss_max_kb"],
        "py_heap_peak_kb": snapshot.get("py_heap_peak_kb"),
        "deliveries_per_second": gauge("protocol.deliveries_per_second"),
        # Causal wave statistics: deterministic counts (seeded
        # interleaving), gated exactly like the message counts.  The
        # depth-vs-n curve is the machine-checked form of the paper's
        # bounded-update-wave claim.
        "waves": len(waves),
        "max_wave_depth": max(depths, default=0),
        "mean_wave_depth": (
            round(sum(depths) / len(depths), 2) if depths else 0.0
        ),
        "phases": {
            name: {
                "total_s": round(entry["total_s"], 4),
                "self_s": round(entry["self_s"], 4),
                "cpu_s": round(entry["cpu_s"], 4),
                "calls": int(entry["calls"]),
            }
            for name, entry in phases.items()
        },
        "profile_report": report,
    }


def collect_scale(
    *,
    sizes: tuple[int, ...] = SCALE_SIZES,
    seed: int = 0,
    profile_memory: str = "rss",
) -> dict[str, Any]:
    """The full trajectory document (sizes ascending — see module doc)."""
    entries = [
        scale_point(n, seed=seed, profile_memory=profile_memory)
        for n in sorted(sizes)
    ]
    return {
        "schema": SCALE_SCHEMA,
        "generated_by": "python -m repro scale-bench",
        "workload": {
            **{k: v for k, v in WORKLOAD.items()},
            "outage": list(WORKLOAD["outage"]),
            "seed": seed,
        },
        "entries": entries,
    }


def write_scale(path: str, document: dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------
#: Deterministic count fields compared exactly.  A field absent from
#: the baseline entry is skipped: additive extensions (new gate fields)
#: must not invalidate committed baselines.
EXACT_FIELDS = (
    "nodes",
    "links",
    "messages",
    "lsu_sent",
    "mtu_runs",
    "waves",
    "max_wave_depth",
)

#: Resource fields compared within a factor; (field, default factor).
#: 3x on time: the hot path is deterministic enough that anything past
#: a 3x slowdown is a code regression, not machine noise.
FACTOR_FIELDS = {"wall_s": 3.0, "cpu_s": 3.0, "rss_max_kb": 3.0}


def compare_scale(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    *,
    factors: dict[str, float] | None = None,
) -> list[str]:
    """Regressions of ``fresh`` against ``baseline``; empty = pass.

    Count fields must match exactly (they are deterministic given the
    workload seed — a mismatch means behaviour changed, not the
    machine).  Resource fields may grow up to ``factors[field]`` times
    the recorded value (generous by default: the gate is for
    order-of-magnitude regressions, machine noise is not a failure).
    Missing sizes in ``fresh`` are ignored, so a CI subset run
    (``--max-nodes``) checks only what it ran.
    """
    limits = dict(FACTOR_FIELDS)
    limits.update(factors or {})
    problems: list[str] = []
    if baseline.get("schema") != fresh.get("schema"):
        problems.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs fresh {fresh.get('schema')!r}"
        )
        return problems
    recorded = {entry["n"]: entry for entry in baseline["entries"]}
    for entry in fresh["entries"]:
        n = entry["n"]
        base = recorded.get(n)
        if base is None:
            problems.append(f"n={n}: no baseline entry to compare against")
            continue
        tag = f"n={n} ({entry['name']})"
        for field in EXACT_FIELDS:
            if field not in base:
                continue  # additive field, older baseline: tolerated
            if entry.get(field) != base.get(field):
                problems.append(
                    f"{tag}: {field} changed: baseline {base.get(field)!r} "
                    f"-> fresh {entry.get(field)!r} (deterministic count; "
                    "regenerate BENCH_scale.json if intentional)"
                )
        for name, base_phase in base.get("phases", {}).items():
            fresh_phase = entry.get("phases", {}).get(name)
            if fresh_phase is None:
                problems.append(f"{tag}: phase {name!r} disappeared")
            elif fresh_phase["calls"] != base_phase["calls"]:
                problems.append(
                    f"{tag}: phase {name!r} call count changed: "
                    f"{base_phase['calls']} -> {fresh_phase['calls']}"
                )
        for field, factor in limits.items():
            base_value = base.get(field)
            fresh_value = entry.get(field)
            if not base_value or fresh_value is None:
                continue
            if fresh_value > base_value * factor:
                problems.append(
                    f"{tag}: {field} regressed more than {factor:g}x: "
                    f"baseline {base_value:g} -> fresh {fresh_value:g}"
                )
    return problems


def render_scale_table(document: dict[str, Any]) -> str:
    """Plain-text trajectory table (also the EXPERIMENTS.md source)."""
    header = (
        "topology".ljust(14)
        + "nodes".rjust(6)
        + "links".rjust(7)
        + "messages".rjust(10)
        + "wall_s".rjust(9)
        + "cpu_s".rjust(9)
        + "peak MB".rjust(9)
        + "msg/s".rjust(10)
    )
    lines = [
        "scale trajectory (cold start + failure + restore, profiled)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for entry in document["entries"]:
        rss = entry.get("rss_max_kb")
        rate = entry.get("deliveries_per_second")
        lines.append(
            entry["name"].ljust(14)
            + f"{entry['nodes']}".rjust(6)
            + f"{entry['links']}".rjust(7)
            + f"{entry['messages']}".rjust(10)
            + f"{entry['wall_s']:.2f}".rjust(9)
            + f"{entry['cpu_s']:.2f}".rjust(9)
            + (f"{rss / 1024:.0f}" if rss else "-").rjust(9)
            + (f"{rate:.0f}" if rate else "-").rjust(10)
        )
    lines.append("-" * len(header))
    lines.append(
        "(message counts are deterministic; wall/cpu/RSS are this "
        "machine's — peak RSS is a process high-water mark, sizes run "
        "ascending)"
    )
    return "\n".join(lines)
