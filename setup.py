"""Legacy setup shim.

The environment's setuptools predates PEP 660 editable installs (no
``bdist_wheel``); this file lets ``pip install -e .`` fall back to the
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
